package spans

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
)

// SchemaV1 identifies the versioned spans file: a header line, one JSON
// line per unit delta in canonical (group, index) order, and a trailer
// with totals so truncated files are detectable.
const SchemaV1 = "alive-mutate-spans/v1"

type fileHeader struct {
	Schema        string `json:"schema"`
	Deterministic bool   `json:"deterministic,omitempty"`
}

type fileTrailer struct {
	Units int `json:"units"`
	Spans int `json:"spans"`
}

// Store collects unit span deltas from live execution and checkpoint
// replay alike. Ingestion is a short-lock append (the campaign loop never
// blocks on I/O); the canonical order is imposed at read/write time, so a
// resumed campaign and an uninterrupted one — or the same campaign at
// different -workers — produce byte-identical files.
type Store struct {
	mu            sync.Mutex
	deterministic bool
	units         []*UnitSpans
}

// NewStore returns an empty Store. deterministic selects the
// zeroed-duration recording mode used by byte-identity tests.
func NewStore(deterministic bool) *Store {
	return &Store{deterministic: deterministic}
}

// Deterministic reports the recording mode. Nil-safe.
func (s *Store) Deterministic() bool {
	return s != nil && s.deterministic
}

// NewRecorder returns a Recorder for one unit execution, or nil when the
// Store itself is nil (spans disabled).
func (s *Store) NewRecorder(group, unit string, index int, seed uint64) *Recorder {
	if s == nil {
		return nil
	}
	return newRecorder(s.deterministic, group, unit, index, seed)
}

// Add folds a completed unit delta in. Used both when a unit finishes
// live and when a checkpoint restores it; nil-safe on both sides.
func (s *Store) Add(u *UnitSpans) {
	if s == nil || u == nil {
		return
	}
	s.mu.Lock()
	s.units = append(s.units, u)
	s.mu.Unlock()
}

// Units returns the deltas in canonical order: group ascending, then
// index ascending. Nil-safe; the slice is a copy, the deltas are shared.
func (s *Store) Units() []*UnitSpans {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	out := make([]*UnitSpans, len(s.units))
	copy(out, s.units)
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Group != out[j].Group {
			return out[i].Group < out[j].Group
		}
		return out[i].Index < out[j].Index
	})
	return out
}

// Len reports the number of unit deltas collected so far. Nil-safe.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.units)
}

// WriteTo renders the versioned spans file: header, canonical unit
// lines, trailer. Output through a buffered writer, one flush at the end.
func (s *Store) WriteTo(w io.Writer) (int64, error) {
	units := s.Units()
	cw := &countingWriter{w: w}
	bw := bufio.NewWriterSize(cw, 64<<10)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(fileHeader{Schema: SchemaV1, Deterministic: s.Deterministic()}); err != nil {
		return cw.n, err
	}
	total := 0
	for _, u := range units {
		if err := enc.Encode(u); err != nil {
			return cw.n, err
		}
		total += len(u.Spans)
	}
	if err := enc.Encode(fileTrailer{Units: len(units), Spans: total}); err != nil {
		return cw.n, err
	}
	return cw.n, bw.Flush()
}

// WriteFile writes the spans file atomically enough for our purposes:
// truncate and rewrite (resume rewrites the whole canonical file rather
// than appending, unlike the journal — order is global, not temporal).
func (s *Store) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := s.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// File is a parsed and validated spans file.
type File struct {
	Deterministic bool
	Units         []*UnitSpans
}

// Read parses and validates a spans file from r. Every structural
// invariant the writer guarantees is checked: schema, canonical order,
// dense span IDs, parent links, attribute well-formedness, trailer
// totals, and zeroed durations in deterministic mode.
func Read(r io.Reader) (*File, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	var lines [][]byte
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		lines = append(lines, append([]byte(nil), line...))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(lines) < 2 {
		return nil, fmt.Errorf("spans: file too short (%d lines, want header+trailer)", len(lines))
	}

	var hdr fileHeader
	if err := strictUnmarshal(lines[0], &hdr); err != nil {
		return nil, fmt.Errorf("spans: header: %w", err)
	}
	if hdr.Schema != SchemaV1 {
		return nil, fmt.Errorf("spans: schema %q, want %q", hdr.Schema, SchemaV1)
	}
	var tr fileTrailer
	if err := strictUnmarshal(lines[len(lines)-1], &tr); err != nil {
		return nil, fmt.Errorf("spans: trailer: %w", err)
	}

	f := &File{Deterministic: hdr.Deterministic}
	totalSpans := 0
	for i, line := range lines[1 : len(lines)-1] {
		u := &UnitSpans{}
		if err := strictUnmarshal(line, u); err != nil {
			return nil, fmt.Errorf("spans: unit line %d: %w", i+1, err)
		}
		if err := validateUnit(u, hdr.Deterministic); err != nil {
			return nil, fmt.Errorf("spans: unit %s/%s: %w", u.Group, u.Unit, err)
		}
		if n := len(f.Units); n > 0 {
			prev := f.Units[n-1]
			if prev.Group > u.Group || (prev.Group == u.Group && prev.Index >= u.Index) {
				return nil, fmt.Errorf("spans: units out of canonical order at %s/%s (after %s/%s)",
					u.Group, u.Unit, prev.Group, prev.Unit)
			}
		}
		f.Units = append(f.Units, u)
		totalSpans += len(u.Spans)
	}
	if tr.Units != len(f.Units) || tr.Spans != totalSpans {
		return nil, fmt.Errorf("spans: trailer says %d units/%d spans, file has %d/%d (truncated?)",
			tr.Units, tr.Spans, len(f.Units), totalSpans)
	}
	return f, nil
}

// ReadFile is Read over a file path.
func ReadFile(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

func validateUnit(u *UnitSpans, deterministic bool) error {
	if u.Group == "" || u.Unit == "" {
		return fmt.Errorf("empty group/unit name")
	}
	if u.Index < 0 || u.BudgetSpent < 0 {
		return fmt.Errorf("negative index or budget_spent")
	}
	if len(u.Spans) == 0 {
		return fmt.Errorf("no spans (root span required)")
	}
	if root := u.Spans[0]; root.ID != 0 || root.Parent != -1 || root.Name != NameUnit {
		return fmt.Errorf("malformed root span: %+v", root)
	}
	for i, s := range u.Spans {
		if s.ID != i {
			return fmt.Errorf("span %d has id %d (ids must be dense)", i, s.ID)
		}
		if i > 0 && (s.Parent < 0 || s.Parent >= s.ID) {
			return fmt.Errorf("span %d has parent %d out of range", i, s.Parent)
		}
		if s.Name == "" {
			return fmt.Errorf("span %d unnamed", i)
		}
		if s.OffNS < 0 || s.DurNS < 0 || s.Conflicts < 0 || s.Propagations < 0 {
			return fmt.Errorf("span %d has negative offset/duration/counters", i)
		}
		if deterministic && (s.OffNS != 0 || s.DurNS != 0) {
			return fmt.Errorf("span %d carries wall-clock in a deterministic file", i)
		}
		switch s.Cache {
		case "", CacheHit, CacheMiss:
		default:
			return fmt.Errorf("span %d has cache attribute %q", i, s.Cache)
		}
		if s.Name == NameQuery && s.Verdict == "" {
			return fmt.Errorf("query span %d missing verdict", i)
		}
	}
	return nil
}

func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	return nil
}
