package spans

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// HotspotsSchemaV1 identifies the machine-readable hotspot report.
const HotspotsSchemaV1 = "alive-mutate-hotspots/v1"

// Entry is one ranked hotspot: a seed function, a mutant, a formula
// fingerprint, or a whole unit, with the TV cost attributed to it.
// StaticProved counts the queries the static pre-verifier discharged
// without a SAT solve.
type Entry struct {
	Name         string `json:"name"`
	Queries      int64  `json:"queries"`
	WallNS       int64  `json:"wall_ns"`
	Conflicts    int64  `json:"conflicts"`
	Propagations int64  `json:"propagations,omitempty"`
	CacheMisses  int64  `json:"cache_misses"`
	Unknowns     int64  `json:"unknowns"`
	StaticProved int64  `json:"static_proved,omitempty"`
	// ConcreteScreened counts the entry's queries the concrete-execution
	// rung actually ran (any concrete outcome, including bailout);
	// PortfolioRaces counts those whose solver-portfolio alternates
	// engaged.
	ConcreteScreened int64 `json:"concrete_screened,omitempty"`
	PortfolioRaces   int64 `json:"portfolio_races,omitempty"`
}

// Hotspots is the full report: campaign-wide totals plus the top-N
// rankings the next perf PR aims at. Rank order is TV wall-clock
// descending, then sat.conflicts, then query count, then name — so in
// deterministic span mode (all wall-clock zeroed) the solver-effort
// counters govern and the report is still fully deterministic.
type Hotspots struct {
	Schema        string `json:"schema"`
	Deterministic bool   `json:"deterministic,omitempty"`

	Units                int   `json:"units"`
	Queries              int64 `json:"queries"`
	TVWallNS             int64 `json:"tv_wall_ns"`
	Conflicts            int64 `json:"conflicts"`
	Propagations         int64 `json:"propagations"`
	CacheHits            int64 `json:"cache_hits"`
	CacheMisses          int64 `json:"cache_misses"`
	Unknowns             int64 `json:"unknowns"`
	StaticProved         int64 `json:"static_proved,omitempty"`
	ConcreteScreened     int64 `json:"concrete_screened,omitempty"`
	ConcreteDiverged     int64 `json:"concrete_diverged,omitempty"`
	SrcEncHits           int64 `json:"srcenc_hits,omitempty"`
	SrcEncMisses         int64 `json:"srcenc_misses,omitempty"`
	BudgetExhaustedUnits int   `json:"budget_exhausted_units"`

	// PortfolioWinners is the per-winner-label breakdown ("canonical",
	// "cfg1", ..., "none") of the queries whose portfolio race engaged;
	// absent when no query raced.
	PortfolioWinners map[string]int64 `json:"portfolio_winners,omitempty"`

	TopUnits     []Entry `json:"top_units"`
	TopFunctions []Entry `json:"top_functions"`
	TopMutants   []Entry `json:"top_mutants"`
	TopFormulas  []Entry `json:"top_formulas"`
}

// Compute aggregates unit span deltas into a hotspot report. topN bounds
// each ranking (<=0 means the default of 10). Unknown verdicts on
// budget-exhausted units are what the "raise the TV budget here" signal
// keys on; cache misses name the formulas worth hash-consing.
func Compute(units []*UnitSpans, deterministic bool, topN int) *Hotspots {
	if topN <= 0 {
		topN = 10
	}
	h := &Hotspots{Schema: HotspotsSchemaV1, Deterministic: deterministic, Units: len(units)}
	byUnit := map[string]*Entry{}
	byFunc := map[string]*Entry{}
	byMutant := map[string]*Entry{}
	byFormula := map[string]*Entry{}

	for _, u := range units {
		if u.BudgetExhausted {
			h.BudgetExhaustedUnits++
		}
		unitKey := u.Group + "/" + u.Unit
		// Iteration numbers of mutant spans, keyed by span ID, so query
		// spans can name their mutant.
		mutantIter := map[int]int{}
		for _, s := range u.Spans {
			if s.Name == NameMutant {
				mutantIter[s.ID] = s.Iter
			}
			if s.Name != NameQuery {
				continue
			}
			h.Queries++
			h.TVWallNS += s.DurNS
			h.Conflicts += s.Conflicts
			h.Propagations += s.Propagations
			switch s.Cache {
			case CacheHit:
				h.CacheHits++
			case CacheMiss:
				h.CacheMisses++
			}
			unknown := int64(0)
			if s.Verdict == "unknown" {
				h.Unknowns++
				unknown = 1
			}
			miss := int64(0)
			if s.Cache == CacheMiss {
				miss = 1
			}
			static := int64(0)
			if s.Static == StaticProved {
				h.StaticProved++
				static = 1
			}
			screened := int64(0)
			if s.Concrete != "" {
				h.ConcreteScreened++
				screened = 1
				if s.Concrete == ConcreteDiverged {
					h.ConcreteDiverged++
				}
			}
			switch s.SrcEnc {
			case SrcEncHit:
				h.SrcEncHits++
			case SrcEncMiss:
				h.SrcEncMisses++
			}
			raced := int64(0)
			if s.Portfolio != "" {
				raced = 1
				if h.PortfolioWinners == nil {
					h.PortfolioWinners = map[string]int64{}
				}
				h.PortfolioWinners[s.Portfolio]++
			}
			add := func(m map[string]*Entry, key string) {
				e := m[key]
				if e == nil {
					e = &Entry{Name: key}
					m[key] = e
				}
				e.Queries++
				e.WallNS += s.DurNS
				e.Conflicts += s.Conflicts
				e.Propagations += s.Propagations
				e.CacheMisses += miss
				e.Unknowns += unknown
				e.StaticProved += static
				e.ConcreteScreened += screened
				e.PortfolioRaces += raced
			}
			add(byUnit, unitKey)
			if s.Func != "" {
				add(byFunc, s.Func)
			}
			if iter, ok := mutantIter[s.Parent]; ok {
				add(byMutant, fmt.Sprintf("%s#%d", unitKey, iter))
			}
			if s.FP != "" {
				add(byFormula, s.FP)
			}
		}
	}

	h.TopUnits = rank(byUnit, topN)
	h.TopFunctions = rank(byFunc, topN)
	h.TopMutants = rank(byMutant, topN)
	h.TopFormulas = rank(byFormula, topN)
	return h
}

func rank(m map[string]*Entry, topN int) []Entry {
	out := make([]Entry, 0, len(m))
	for _, e := range m {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool { return entryLess(out[i], out[j]) })
	if len(out) > topN {
		out = out[:topN]
	}
	return out
}

// entryLess is the ranking order: costliest first, name as the final
// deterministic tiebreak.
func entryLess(a, b Entry) bool {
	if a.WallNS != b.WallNS {
		return a.WallNS > b.WallNS
	}
	if a.Conflicts != b.Conflicts {
		return a.Conflicts > b.Conflicts
	}
	if a.Queries != b.Queries {
		return a.Queries > b.Queries
	}
	return a.Name < b.Name
}

// Table renders the human-readable report. Fingerprints are abbreviated
// for the table; the JSON carries them in full.
func (h *Hotspots) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "hotspots: %d units, %d TV queries, %s wall",
		h.Units, h.Queries, fmtNS(h.TVWallNS))
	fmt.Fprintf(&b, ", %d conflicts, cache %d hit / %d miss, %d unknown, %d statically discharged, %d budget-exhausted units\n",
		h.Conflicts, h.CacheHits, h.CacheMisses, h.Unknowns, h.StaticProved, h.BudgetExhaustedUnits)
	fmt.Fprintf(&b, "cascade: %d concretely screened (%d diverged), srcenc %d hit / %d miss",
		h.ConcreteScreened, h.ConcreteDiverged, h.SrcEncHits, h.SrcEncMisses)
	if len(h.PortfolioWinners) > 0 {
		labels := make([]string, 0, len(h.PortfolioWinners))
		for l := range h.PortfolioWinners {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		b.WriteString(", portfolio winners")
		for _, l := range labels {
			fmt.Fprintf(&b, " %s:%d", l, h.PortfolioWinners[l])
		}
	}
	b.WriteString("\n")
	section := func(title string, entries []Entry, abbrev bool) {
		if len(entries) == 0 {
			return
		}
		fmt.Fprintf(&b, "\n%s\n", title)
		fmt.Fprintf(&b, "  %-44s %8s %10s %10s %7s %8s %7s %7s %7s\n",
			"name", "queries", "wall", "conflicts", "miss", "unknown", "static", "conc", "raced")
		for _, e := range entries {
			name := e.Name
			if abbrev && len(name) > 16 {
				name = name[:16] + "…"
			}
			if len(name) > 44 {
				name = name[:43] + "…"
			}
			fmt.Fprintf(&b, "  %-44s %8d %10s %10d %7d %8d %7d %7d %7d\n",
				name, e.Queries, fmtNS(e.WallNS), e.Conflicts, e.CacheMisses, e.Unknowns,
				e.StaticProved, e.ConcreteScreened, e.PortfolioRaces)
		}
	}
	section("top units by TV cost", h.TopUnits, false)
	section("top seed functions by TV cost", h.TopFunctions, false)
	section("top mutants by TV cost", h.TopMutants, false)
	section("top formula fingerprints by TV cost", h.TopFormulas, true)
	return b.String()
}

func fmtNS(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

// ValidateHotspots strictly parses an alive-mutate-hotspots/v1 document
// and checks its internal invariants.
func ValidateHotspots(data []byte) (*Hotspots, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	h := &Hotspots{}
	if err := dec.Decode(h); err != nil {
		return nil, fmt.Errorf("hotspots: %w", err)
	}
	if h.Schema != HotspotsSchemaV1 {
		return nil, fmt.Errorf("hotspots: schema %q, want %q", h.Schema, HotspotsSchemaV1)
	}
	if h.Units < 0 || h.Queries < 0 || h.TVWallNS < 0 || h.Conflicts < 0 ||
		h.Propagations < 0 || h.CacheHits < 0 || h.CacheMisses < 0 ||
		h.Unknowns < 0 || h.StaticProved < 0 || h.BudgetExhaustedUnits < 0 ||
		h.ConcreteScreened < 0 || h.ConcreteDiverged < 0 ||
		h.SrcEncHits < 0 || h.SrcEncMisses < 0 {
		return nil, fmt.Errorf("hotspots: negative totals")
	}
	if h.CacheHits+h.CacheMisses > h.Queries {
		return nil, fmt.Errorf("hotspots: cache hits+misses (%d) exceed queries (%d)",
			h.CacheHits+h.CacheMisses, h.Queries)
	}
	if h.StaticProved > h.Queries {
		return nil, fmt.Errorf("hotspots: statically discharged (%d) exceed queries (%d)",
			h.StaticProved, h.Queries)
	}
	if h.ConcreteScreened > h.Queries {
		return nil, fmt.Errorf("hotspots: concretely screened (%d) exceed queries (%d)",
			h.ConcreteScreened, h.Queries)
	}
	if h.ConcreteDiverged > h.ConcreteScreened {
		return nil, fmt.Errorf("hotspots: concrete divergences (%d) exceed screened (%d)",
			h.ConcreteDiverged, h.ConcreteScreened)
	}
	if h.SrcEncHits+h.SrcEncMisses > h.Queries {
		return nil, fmt.Errorf("hotspots: srcenc hits+misses (%d) exceed queries (%d)",
			h.SrcEncHits+h.SrcEncMisses, h.Queries)
	}
	var races int64
	for label, n := range h.PortfolioWinners {
		if label == "" || n < 0 {
			return nil, fmt.Errorf("hotspots: bad portfolio winner entry %q:%d", label, n)
		}
		races += n
	}
	if races > h.Queries {
		return nil, fmt.Errorf("hotspots: portfolio races (%d) exceed queries (%d)", races, h.Queries)
	}
	if h.Deterministic && h.TVWallNS != 0 {
		return nil, fmt.Errorf("hotspots: deterministic report carries wall-clock")
	}
	for _, section := range [][]Entry{h.TopUnits, h.TopFunctions, h.TopMutants, h.TopFormulas} {
		for i, e := range section {
			if e.Name == "" {
				return nil, fmt.Errorf("hotspots: unnamed entry at rank %d", i)
			}
			if e.Queries < 0 || e.WallNS < 0 || e.Conflicts < 0 || e.CacheMisses < 0 ||
				e.Unknowns < 0 || e.StaticProved < 0 ||
				e.ConcreteScreened < 0 || e.PortfolioRaces < 0 {
				return nil, fmt.Errorf("hotspots: negative counters on %q", e.Name)
			}
			if i > 0 && entryLess(e, section[i-1]) {
				return nil, fmt.Errorf("hotspots: ranking out of order at %q", e.Name)
			}
		}
	}
	return h, nil
}
