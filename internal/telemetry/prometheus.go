// Prometheus text exposition (text format 0.0.4), rendered from a
// Snapshot so /metrics/prometheus and the end-of-run document can never
// disagree. Naming follows Prometheus conventions: everything sits under
// the alive_mutate_ namespace, counters get a _total suffix, histograms
// are exported in seconds with cumulative `le` buckets, and run labels
// become a single alive_mutate_run_info gauge. Families are emitted in
// sorted-name order and floats are formatted canonically, so the output
// is deterministic for a given snapshot — goldens-testable.

package telemetry

import (
	"bufio"
	"bytes"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// promNamespace prefixes every exported metric family.
const promNamespace = "alive_mutate_"

// promName maps an internal metric name ("stage.opt", "tv.cache_hit") to
// a legal Prometheus metric name body: every character outside
// [a-zA-Z0-9_] becomes '_', and a leading digit gets an underscore
// prefix. The namespace already guarantees a legal first character, but
// the rule is kept local so the function stands alone.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promEscape escapes a label value per the exposition format.
func promEscape(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// promFloat renders a float the way Prometheus clients do: shortest
// round-trip representation, with +Inf/-Inf/NaN spelled out.
func promFloat(f float64) string {
	switch {
	case math.IsInf(f, 1):
		return "+Inf"
	case math.IsInf(f, -1):
		return "-Inf"
	case math.IsNaN(f):
		return "NaN"
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// promFamily is one rendered metric family, sortable by exposed name.
type promFamily struct {
	name string
	text string
}

// PrometheusText renders the snapshot in Prometheus exposition format.
// Nil-safe: a nil snapshot renders to an empty document.
func PrometheusText(s *Snapshot) []byte {
	if s == nil {
		return nil
	}
	fams := make([]promFamily, 0, len(s.Counters)+len(s.Histograms)+1)

	for name, v := range s.Counters {
		fam := promNamespace + promName(name) + "_total"
		var b strings.Builder
		fmt.Fprintf(&b, "# HELP %s Counter %q from the run collector.\n", fam, name)
		fmt.Fprintf(&b, "# TYPE %s counter\n", fam)
		fmt.Fprintf(&b, "%s %d\n", fam, v)
		fams = append(fams, promFamily{fam, b.String()})
	}

	for name, h := range s.Histograms {
		fam := promNamespace + promName(name) + "_seconds"
		var b strings.Builder
		fmt.Fprintf(&b, "# HELP %s Histogram %q from the run collector, in seconds.\n", fam, name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", fam)
		var cum int64
		for i, bound := range h.BoundsNS {
			cum += h.Buckets[i]
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", fam, promFloat(float64(bound)/1e9), cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", fam, h.Count)
		fmt.Fprintf(&b, "%s_sum %s\n", fam, promFloat(float64(h.TotalNS)/1e9))
		fmt.Fprintf(&b, "%s_count %d\n", fam, h.Count)
		fams = append(fams, promFamily{fam, b.String()})
	}

	if len(s.Labels) > 0 {
		fam := promNamespace + "run_info"
		keys := make([]string, 0, len(s.Labels))
		for k := range s.Labels {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var b strings.Builder
		fmt.Fprintf(&b, "# HELP %s Run metadata labels (always 1).\n", fam)
		fmt.Fprintf(&b, "# TYPE %s gauge\n", fam)
		b.WriteString(fam)
		b.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%s=\"%s\"", promName(k), promEscape(s.Labels[k]))
		}
		b.WriteString("} 1\n")
		fams = append(fams, promFamily{fam, b.String()})
	}

	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	var out bytes.Buffer
	for _, f := range fams {
		out.WriteString(f.text)
	}
	return out.Bytes()
}

// promSample is one parsed non-comment exposition line.
type promSample struct {
	name  string // full metric name including _bucket/_sum/_count
	le    string // value of the le label, "" when absent
	value float64
	line  int
}

// parsePrometheus tokenizes an exposition document into TYPE declarations
// (in document order) and samples. It accepts only the subset this
// package emits — one optional {le="…"} or info label set — which is all
// the linter needs.
func parsePrometheus(data []byte) (types []string, samples []promSample, err error) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if fields := strings.Fields(line); len(fields) >= 3 && fields[1] == "TYPE" {
				types = append(types, fields[2])
			}
			continue
		}
		// NAME{labels} VALUE  |  NAME VALUE
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return nil, nil, fmt.Errorf("prom: line %d: no value: %q", lineNo, line)
		}
		head, valStr := line[:sp], line[sp+1:]
		var name, le string
		if br := strings.IndexByte(head, '{'); br >= 0 {
			name = head[:br]
			labels := strings.TrimSuffix(head[br+1:], "}")
			for _, kv := range strings.Split(labels, ",") {
				if k, v, ok := strings.Cut(kv, "="); ok && k == "le" {
					le = strings.Trim(v, `"`)
				}
			}
		} else {
			name = head
		}
		var val float64
		switch valStr {
		case "+Inf":
			val = math.Inf(1)
		case "-Inf":
			val = math.Inf(-1)
		default:
			val, err = strconv.ParseFloat(valStr, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("prom: line %d: bad value %q", lineNo, valStr)
			}
		}
		samples = append(samples, promSample{name: name, le: le, value: val, line: lineNo})
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("prom: scan: %w", err)
	}
	return types, samples, nil
}

// parseLE parses an `le` label value ("+Inf" aware).
func parseLE(le string) (float64, error) {
	if le == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(le, 64)
}

// LintPrometheus checks an exposition capture for the invariants the
// renderer guarantees: family names sorted and unique, histogram `le`
// bounds strictly increasing with cumulative non-decreasing counts ending
// in an +Inf bucket that equals _count, and _sum consistent with the
// bucket contents. When against is non-nil the capture is additionally
// cross-checked against that JSON snapshot: every counter and histogram
// must appear with matching counts, and sums must agree within rtol
// (relative tolerance; <= 0 selects 1e-9, covering float formatting).
func LintPrometheus(data []byte, against *Snapshot, rtol float64) error {
	if rtol <= 0 {
		rtol = 1e-9
	}
	types, samples, err := parsePrometheus(data)
	if err != nil {
		return err
	}
	for i := 1; i < len(types); i++ {
		if types[i] <= types[i-1] {
			return fmt.Errorf("prom: families not sorted: %q after %q", types[i], types[i-1])
		}
	}

	// Group histogram series by family.
	type histAcc struct {
		les      []float64
		cums     []int64
		sum      float64
		count    int64
		hasSum   bool
		hasCount bool
	}
	hists := map[string]*histAcc{}
	counters := map[string]float64{}
	acc := func(fam string) *histAcc {
		h, ok := hists[fam]
		if !ok {
			h = &histAcc{}
			hists[fam] = h
		}
		return h
	}
	for _, s := range samples {
		switch {
		case strings.HasSuffix(s.name, "_bucket"):
			fam := strings.TrimSuffix(s.name, "_bucket")
			le, err := parseLE(s.le)
			if err != nil {
				return fmt.Errorf("prom: line %d: bad le %q", s.line, s.le)
			}
			h := acc(fam)
			h.les = append(h.les, le)
			h.cums = append(h.cums, int64(s.value))
		case strings.HasSuffix(s.name, "_sum") && !strings.HasSuffix(s.name, "_total"):
			h := acc(strings.TrimSuffix(s.name, "_sum"))
			h.sum, h.hasSum = s.value, true
		case strings.HasSuffix(s.name, "_count"):
			h := acc(strings.TrimSuffix(s.name, "_count"))
			h.count, h.hasCount = int64(s.value), true
		case strings.HasSuffix(s.name, "_total"):
			counters[s.name] = s.value
		}
	}
	for fam, h := range hists {
		if !h.hasSum || !h.hasCount {
			return fmt.Errorf("prom: histogram %s missing _sum or _count", fam)
		}
		if len(h.les) == 0 || !math.IsInf(h.les[len(h.les)-1], 1) {
			return fmt.Errorf("prom: histogram %s has no +Inf bucket", fam)
		}
		for i := 1; i < len(h.les); i++ {
			if h.les[i] <= h.les[i-1] {
				return fmt.Errorf("prom: histogram %s le bounds not increasing at index %d", fam, i)
			}
			if h.cums[i] < h.cums[i-1] {
				return fmt.Errorf("prom: histogram %s bucket counts not cumulative at index %d", fam, i)
			}
		}
		if inf := h.cums[len(h.cums)-1]; inf != h.count {
			return fmt.Errorf("prom: histogram %s +Inf bucket %d != count %d", fam, inf, h.count)
		}
		if h.count == 0 && h.sum != 0 {
			return fmt.Errorf("prom: histogram %s has zero count but sum %v", fam, h.sum)
		}
	}

	if against == nil {
		return nil
	}
	within := func(got, want float64) bool {
		diff := math.Abs(got - want)
		return diff <= rtol*math.Max(math.Abs(got), math.Abs(want))+1e-12
	}
	for name, v := range against.Counters {
		fam := promNamespace + promName(name) + "_total"
		got, ok := counters[fam]
		if !ok {
			return fmt.Errorf("prom: counter %q (%s) missing from exposition", name, fam)
		}
		if int64(got) != v {
			return fmt.Errorf("prom: counter %s = %v, snapshot says %d", fam, got, v)
		}
	}
	for name, hs := range against.Histograms {
		fam := promNamespace + promName(name) + "_seconds"
		h, ok := hists[fam]
		if !ok {
			return fmt.Errorf("prom: histogram %q (%s) missing from exposition", name, fam)
		}
		if h.count != hs.Count {
			return fmt.Errorf("prom: histogram %s count %d, snapshot says %d", fam, h.count, hs.Count)
		}
		if !within(h.sum, float64(hs.TotalNS)/1e9) {
			return fmt.Errorf("prom: histogram %s sum %v disagrees with snapshot %v beyond tolerance",
				fam, h.sum, float64(hs.TotalNS)/1e9)
		}
	}
	return nil
}
