// Sink bundles the destinations a run records into. Hot-path layers
// (core, campaign) take a *Sink; a nil sink — or a nil field inside one —
// turns every hook into a pointer test, which is the entire overhead of
// disabled telemetry.

package telemetry

import "repro/internal/telemetry/spans"

// Sink is the per-run telemetry context threaded through the pipeline.
type Sink struct {
	// Metrics receives counters and stage timings. In a sharded campaign
	// each unit gets a Sink whose Metrics is shard-local; the campaign
	// merges shards into the run-wide collector as they finish.
	Metrics *Collector
	// Journal receives structured events. The journal serializes
	// internally, so one journal is shared by every shard.
	Journal *Journal
	// Status receives the coordinator's live read model when the HTTP
	// status API is enabled. Only the coordinator publishes; shard sinks
	// leave it nil.
	Status *StatusPublisher
	// Shard is the worker index stamped on journal events (-1 when the
	// emitter is not a pool worker).
	Shard int
	// Spans is the cost-attribution recorder for the one unit this sink
	// serves. Per-unit, not per-run: the campaign attaches a fresh
	// recorder to each unit's shard sink; ShardSink deliberately does not
	// copy it.
	Spans *spans.Recorder
}

// Shard derives a shard-local sink: a fresh collector (merged later by
// the caller), the shared journal, and the given shard id (nil-safe).
func (s *Sink) ShardSink(shard int) *Sink {
	if s == nil {
		return nil
	}
	return &Sink{Metrics: NewCollector(), Journal: s.Journal, Shard: shard}
}

// StatusPublisher returns the sink's status publisher (nil-safe).
func (s *Sink) StatusPublisher() *StatusPublisher {
	if s == nil {
		return nil
	}
	return s.Status
}

// SpansRecorder returns the sink's span recorder (nil-safe).
func (s *Sink) SpansRecorder() *spans.Recorder {
	if s == nil {
		return nil
	}
	return s.Spans
}

// Collector returns the sink's metrics collector (nil-safe).
func (s *Sink) Collector() *Collector {
	if s == nil {
		return nil
	}
	return s.Metrics
}

// Emit forwards an event to the journal, stamping the sink's shard id
// (nil-safe).
func (s *Sink) Emit(ev Event) {
	if s == nil {
		return
	}
	ev.Shard = s.Shard
	s.Journal.Emit(ev)
}
