package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry/spans"
)

// TestServeMetrics boots the endpoint on an ephemeral localhost port and
// exercises every route a user would hit mid-campaign.
func TestServeMetrics(t *testing.T) {
	c := NewCollector()
	c.SetLabel("command", "test")
	c.Add("mutants", 7)
	c.ObserveStage("tv", 3*time.Millisecond)

	srv, err := ServeMetrics("127.0.0.1:0", c)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body)
	}

	// /metrics.json serves a schema-valid live snapshot.
	body := get("/metrics.json")
	snap, err := ValidateSnapshot([]byte(body))
	if err != nil {
		t.Fatalf("/metrics.json is not a valid snapshot: %v", err)
	}
	if snap.Counters["mutants"] != 7 {
		t.Errorf("/metrics.json mutants = %d, want 7", snap.Counters["mutants"])
	}

	// /debug/vars exposes the collector under the alive_mutate expvar.
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(get("/debug/vars")), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := vars["alive_mutate"]; !ok {
		t.Error("/debug/vars is missing the alive_mutate variable")
	}

	// /stages renders the breakdown table.
	if out := get("/stages"); !strings.Contains(out, "tv") {
		t.Errorf("/stages missing the recorded stage:\n%s", out)
	}

	// pprof is wired: cmdline is the cheapest endpoint to probe.
	if out := get("/debug/pprof/cmdline"); out == "" {
		t.Error("/debug/pprof/cmdline returned nothing")
	}
}

// TestServeFullSurface boots the complete observability endpoint —
// dashboard, status API, SSE, Prometheus — on one listener and checks
// every route agrees with its source of truth.
func TestServeFullSurface(t *testing.T) {
	c := NewCollector()
	c.SetLabel("command", "test")
	c.Add("mutants", 150)
	c.ObserveStage("tv", 3*time.Millisecond)

	st := NewStatusPublisher()
	snap := statusFixture()
	snap.Schema = ""
	st.Publish(snap)

	events := NewEventBuffer(8)
	events.Add(1, []byte(`{"seq":1,"event":"campaign_start"}`))

	srv, err := Serve("127.0.0.1:0", ServeOptions{Collector: c, Status: st, Events: events})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string, wantStatus int) (string, *http.Response) {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("GET %s: status %d, want %d", path, resp.StatusCode, wantStatus)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body), resp
	}

	// Without a span store /healthz reports spans off and /api/hotspots
	// 404s with the enabling flag in the hint.
	if body, _ := get("/healthz", http.StatusOK); body != "ok\nspans: off\n" {
		t.Errorf("/healthz = %q", body)
	}
	if body, _ := get("/api/hotspots", http.StatusNotFound); !strings.Contains(body, "-spans-out") {
		t.Errorf("/api/hotspots without a store = %q, want hint naming -spans-out", body)
	}

	// The dashboard serves at exactly /; other paths are 404, not the
	// dashboard (a typoed API URL must not return HTML 200).
	if body, resp := get("/", http.StatusOK); !strings.Contains(body, "<html") {
		t.Errorf("/ is not the dashboard: %.80q", body)
	} else if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("/ Content-Type = %q", ct)
	}
	get("/no-such-page", http.StatusNotFound)

	// /api/status round-trips through the strict validator and carries the
	// stage rows stamped from the live collector.
	body, _ := get("/api/status", http.StatusOK)
	s, err := ValidateStatus([]byte(body))
	if err != nil {
		t.Fatalf("/api/status invalid: %v", err)
	}
	if s.UnitsDone != 2 || len(s.Stages) != 1 || s.Stages[0].Name != "tv" {
		t.Errorf("/api/status = units_done %d, stages %+v", s.UnitsDone, s.Stages)
	}
	if body, _ := get("/api/units", http.StatusOK); !strings.Contains(body, `"state": "running"`) {
		t.Errorf("/api/units missing unit rows:\n%s", body)
	}
	if body, _ := get("/api/groups", http.StatusOK); !strings.Contains(body, `"mutants_budget": 120`) {
		t.Errorf("/api/groups missing group rows:\n%s", body)
	}

	// /metrics/prometheus lints clean and cross-checks against the
	// /metrics.json snapshot from the same collector.
	mj, _ := get("/metrics.json", http.StatusOK)
	msnap, err := ValidateSnapshot([]byte(mj))
	if err != nil {
		t.Fatal(err)
	}
	prom, resp := get("/metrics/prometheus", http.StatusOK)
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics/prometheus Content-Type = %q", ct)
	}
	if err := LintPrometheus([]byte(prom), msnap, 0); err != nil {
		t.Errorf("/metrics/prometheus fails lint against /metrics.json: %v", err)
	}

	// /api/events streams the buffered journal tail over SSE.
	eresp, err := http.Get(fmt.Sprintf("http://%s/api/events", srv.Addr))
	if err != nil {
		t.Fatal(err)
	}
	defer eresp.Body.Close()
	if ct := eresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("/api/events Content-Type = %q", ct)
	}
	frame := make([]byte, 256)
	n, err := eresp.Body.Read(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(frame[:n]); !strings.Contains(got, "id: 1") || !strings.Contains(got, "campaign_start") {
		t.Errorf("/api/events first frame = %q", got)
	}

	// Close terminates the SSE stream and is idempotent. The server
	// force-closes connections, so any error is fine — the property under
	// test is that the read returns at all instead of hanging.
	srv.Close()
	io.Copy(io.Discard, eresp.Body) //nolint:errcheck
	srv.Close()
}

// TestServeDisabledRoutes: without a publisher or event buffer the API
// routes 404 with a hint instead of serving garbage.
func TestServeDisabledRoutes(t *testing.T) {
	srv, err := ServeMetrics("127.0.0.1:0", NewCollector())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for path, hint := range map[string]string{
		"/api/status":   "status API not enabled",
		"/api/units":    "status API not enabled",
		"/api/groups":   "status API not enabled",
		"/api/events":   "event stream not enabled",
		"/api/hotspots": "hotspot API not enabled",
	} {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound || !strings.Contains(string(body), hint) {
			t.Errorf("GET %s = %d %q, want 404 mentioning %q", path, resp.StatusCode, body, hint)
		}
	}
}

// TestServeRefusesPublicBind: non-loopback hosts need the explicit
// Public opt-in, because the endpoint exposes pprof and internals — and
// the refusal covers span-carrying configurations too: a hotspot API
// full of seed-function names must not leak onto a public interface by
// accident either.
func TestServeRefusesPublicBind(t *testing.T) {
	_, err := Serve("0.0.0.0:0", ServeOptions{Collector: NewCollector()})
	if err == nil || !strings.Contains(err.Error(), "-metrics-public") {
		t.Fatalf("non-loopback bind without Public: err = %v, want refusal", err)
	}
	_, err = Serve("0.0.0.0:0", ServeOptions{Collector: NewCollector(), Spans: spans.NewStore(false)})
	if err == nil || !strings.Contains(err.Error(), "-metrics-public") {
		t.Fatalf("non-loopback bind with span store, without Public: err = %v, want refusal", err)
	}
	srv, err := Serve("0.0.0.0:0", ServeOptions{Collector: NewCollector(), Spans: spans.NewStore(false), Public: true})
	if err != nil {
		t.Fatalf("public bind with opt-in failed: %v", err)
	}
	srv.Close()
}

// TestServeHotspots: with a span store attached, /healthz reports active
// recording and /api/hotspots serves a schema-valid live report computed
// from the store's units.
func TestServeHotspots(t *testing.T) {
	store := spans.NewStore(true)
	rec := store.NewRecorder("g", "u", 0, 42)
	rec.BeginMutant(0, 9)
	rec.Func("f")
	rec.Query(spans.QueryInfo{Verdict: "valid", FP: "aa", Cache: spans.CacheMiss, Conflicts: 11, Propagations: 40}, time.Millisecond)
	rec.EndMutant(false)
	store.Add(rec.Finish(1, false))

	srv, err := Serve("127.0.0.1:0", ServeOptions{Collector: NewCollector(), Spans: store})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get(fmt.Sprintf("http://%s/healthz", srv.Addr))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ok\nspans: active\n" {
		t.Errorf("/healthz = %q", body)
	}

	resp, err = http.Get(fmt.Sprintf("http://%s/api/hotspots", srv.Addr))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/api/hotspots = %d %q", resp.StatusCode, body)
	}
	h, err := spans.ValidateHotspots(body)
	if err != nil {
		t.Fatalf("/api/hotspots invalid: %v", err)
	}
	if h.Queries != 1 || h.Conflicts != 11 || len(h.TopFunctions) != 1 || h.TopFunctions[0].Name != "f" {
		t.Errorf("/api/hotspots = %+v", h)
	}
}

// TestServeMetricsBadAddr: a malformed address must fail up front, not at
// first request.
func TestServeMetricsBadAddr(t *testing.T) {
	if _, err := ServeMetrics("no-port-here", NewCollector()); err == nil {
		t.Error("expected error for address without port")
	}
}

// TestServeMetricsEmptyHost defaults to localhost rather than all
// interfaces (the endpoint exposes pprof, so this is a safety property).
func TestServeMetricsEmptyHost(t *testing.T) {
	srv, err := ServeMetrics(":0", NewCollector())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if !strings.HasPrefix(srv.Addr, "127.0.0.1:") {
		t.Errorf("empty host bound %s, want 127.0.0.1", srv.Addr)
	}
}
