package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestServeMetrics boots the endpoint on an ephemeral localhost port and
// exercises every route a user would hit mid-campaign.
func TestServeMetrics(t *testing.T) {
	c := NewCollector()
	c.SetLabel("command", "test")
	c.Add("mutants", 7)
	c.ObserveStage("tv", 3*time.Millisecond)

	srv, err := ServeMetrics("127.0.0.1:0", c)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body)
	}

	// /metrics.json serves a schema-valid live snapshot.
	body := get("/metrics.json")
	snap, err := ValidateSnapshot([]byte(body))
	if err != nil {
		t.Fatalf("/metrics.json is not a valid snapshot: %v", err)
	}
	if snap.Counters["mutants"] != 7 {
		t.Errorf("/metrics.json mutants = %d, want 7", snap.Counters["mutants"])
	}

	// /debug/vars exposes the collector under the alive_mutate expvar.
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(get("/debug/vars")), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := vars["alive_mutate"]; !ok {
		t.Error("/debug/vars is missing the alive_mutate variable")
	}

	// /stages renders the breakdown table.
	if out := get("/stages"); !strings.Contains(out, "tv") {
		t.Errorf("/stages missing the recorded stage:\n%s", out)
	}

	// pprof is wired: cmdline is the cheapest endpoint to probe.
	if out := get("/debug/pprof/cmdline"); out == "" {
		t.Error("/debug/pprof/cmdline returned nothing")
	}
}

// TestServeMetricsBadAddr: a malformed address must fail up front, not at
// first request.
func TestServeMetricsBadAddr(t *testing.T) {
	if _, err := ServeMetrics("no-port-here", NewCollector()); err == nil {
		t.Error("expected error for address without port")
	}
}

// TestServeMetricsEmptyHost defaults to localhost rather than all
// interfaces (the endpoint exposes pprof, so this is a safety property).
func TestServeMetricsEmptyHost(t *testing.T) {
	srv, err := ServeMetrics(":0", NewCollector())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if !strings.HasPrefix(srv.Addr, "127.0.0.1:") {
		t.Errorf("empty host bound %s, want 127.0.0.1", srv.Addr)
	}
}
