// Package telemetry is the campaign observability layer: named atomic
// counters, fixed-bucket latency histograms, stage timers, a structured
// JSONL event journal, a live expvar/pprof endpoint, and an end-of-run
// JSON snapshot. The paper's central claim is *throughput* — mutants
// validated per second — and this package is how the repository measures
// where that time goes inside the mutate→optimize→verify pipeline.
//
// Design constraints, in order:
//
//  1. Determinism of campaign *results* is untouched: telemetry is
//     strictly write-only from the fuzzing loop's point of view — nothing
//     in the pipeline reads a counter to make a decision. Shards record
//     into shard-local collectors that are merged at aggregation time, so
//     worker interleaving can reorder journal lines and wall-clock
//     numbers but never the result table.
//  2. Low overhead: the hot path touches only atomic adds and
//     time.Now() pairs; name→counter lookups are done once per shard (or
//     amortized behind a read-mostly lock), never per mutant. A nil
//     *Collector (or *Sink) is a no-op on every method, so a build or run
//     without telemetry pays a single pointer test per hook site.
//  3. Zero dependencies: stdlib only, and no repo-internal imports, so
//     every layer (opt, tv, core, campaign, commands) can use it without
//     cycles.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter (nil-safe).
func (c *Counter) Add(delta int64) {
	if c != nil {
		c.v.Add(delta)
	}
}

// Value reads the counter (nil-safe).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// NumBuckets is the number of finite histogram buckets. Bucket i counts
// observations in [BucketBound(i-1), BucketBound(i)); observations at or
// above BucketBound(NumBuckets-1) land in the overflow bucket.
const NumBuckets = 28

// bucketBase is the upper bound of bucket 0 in nanoseconds (1µs). Bounds
// double per bucket: 1µs, 2µs, 4µs, ... so bucket 27 tops out at 2^27µs
// ≈ 134s — far beyond any single pipeline stage this repo times.
const bucketBase = 1000

// BucketBound returns the exclusive upper bound (in ns) of bucket i.
func BucketBound(i int) int64 {
	return bucketBase << uint(i)
}

// bucketFor maps a duration in ns to its bucket index, or NumBuckets for
// the overflow bucket.
func bucketFor(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	// Smallest i with ns < bucketBase<<i.
	for i := 0; i < NumBuckets; i++ {
		if ns < bucketBase<<uint(i) {
			return i
		}
	}
	return NumBuckets
}

// Histogram is a fixed-bucket latency histogram with exponential
// (doubling) bucket bounds. All fields are atomics so shard-local and
// merged histograms share one implementation; a shard-local histogram is
// still only touched by one goroutine, so the atomics are uncontended.
type Histogram struct {
	buckets [NumBuckets + 1]atomic.Int64 // +1 = overflow
	count   atomic.Int64
	sum     atomic.Int64 // total ns
	min     atomic.Int64 // valid when count > 0
	max     atomic.Int64
}

// Observe records one duration (nil-safe).
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketFor(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	// min tracks the smallest non-zero-able observation with 0 meaning
	// "unset"; a true 0ns observation is recorded as 1ns here, which is
	// well under the resolution anything downstream reports.
	if ns == 0 {
		ns = 1
	}
	for {
		old := h.min.Load()
		if old != 0 && old <= ns {
			break
		}
		if h.min.CompareAndSwap(old, ns) {
			break
		}
	}
	for {
		old := h.max.Load()
		if old >= ns {
			break
		}
		if h.max.CompareAndSwap(old, ns) {
			break
		}
	}
}

// Count returns the number of observations (nil-safe).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total observed nanoseconds (nil-safe).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Bucket returns the count in bucket i (i == NumBuckets is overflow).
func (h *Histogram) Bucket(i int) int64 {
	if h == nil {
		return 0
	}
	return h.buckets[i].Load()
}

// merge folds other into h.
func (h *Histogram) merge(other *Histogram) {
	if other.count.Load() == 0 {
		return
	}
	for i := range h.buckets {
		if n := other.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(other.count.Load())
	h.sum.Add(other.sum.Load())
	if om := other.min.Load(); om != 0 {
		for {
			old := h.min.Load()
			if old != 0 && old <= om {
				break
			}
			if h.min.CompareAndSwap(old, om) {
				break
			}
		}
	}
	if om := other.max.Load(); om != 0 {
		for {
			old := h.max.Load()
			if old >= om {
				break
			}
			if h.max.CompareAndSwap(old, om) {
				break
			}
		}
	}
}

// Collector is a named registry of counters and histograms. One global
// collector aggregates a whole run; each campaign shard records into its
// own shard-local collector that is merged into the global one when the
// shard finishes (Merge), so the hot loop never contends on the registry
// lock. All methods are safe on a nil receiver (no-ops / zero values).
type Collector struct {
	mu     sync.RWMutex
	ctrs   map[string]*Counter
	hists  map[string]*Histogram
	labels map[string]string // run metadata for the snapshot
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		ctrs:   map[string]*Counter{},
		hists:  map[string]*Histogram{},
		labels: map[string]string{},
	}
}

// Counter returns (creating if needed) the named counter. Nil-safe: a nil
// collector returns nil, and nil *Counter methods are no-ops, so hook
// sites may cache the result unconditionally.
func (c *Collector) Counter(name string) *Counter {
	if c == nil {
		return nil
	}
	c.mu.RLock()
	ctr, ok := c.ctrs[name]
	c.mu.RUnlock()
	if ok {
		return ctr
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if ctr, ok = c.ctrs[name]; ok {
		return ctr
	}
	ctr = &Counter{}
	c.ctrs[name] = ctr
	return ctr
}

// Histogram returns (creating if needed) the named histogram (nil-safe).
func (c *Collector) Histogram(name string) *Histogram {
	if c == nil {
		return nil
	}
	c.mu.RLock()
	h, ok := c.hists[name]
	c.mu.RUnlock()
	if ok {
		return h
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if h, ok = c.hists[name]; ok {
		return h
	}
	h = &Histogram{}
	c.hists[name] = h
	return h
}

// Add increments a named counter (nil-safe convenience).
func (c *Collector) Add(name string, delta int64) {
	c.Counter(name).Add(delta)
}

// Observe records a duration into a named histogram (nil-safe).
func (c *Collector) Observe(name string, d time.Duration) {
	c.Histogram(name).Observe(d)
}

// SetLabel attaches run metadata (workers, seed, command line) to the
// snapshot (nil-safe).
func (c *Collector) SetLabel(key, value string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.labels[key] = value
	c.mu.Unlock()
}

// StartStage starts a named stage timer; the returned func records the
// elapsed time into the stage's histogram. Nil-safe: a nil collector
// returns a shared no-op func, so disabled telemetry allocates nothing.
func (c *Collector) StartStage(name string) func() {
	if c == nil {
		return nopStop
	}
	h := c.Histogram("stage." + name)
	start := time.Now()
	return func() { h.Observe(time.Since(start)) }
}

// ObserveStage records an already-measured stage duration (the manual
// variant hot loops use to avoid a closure allocation per stage).
func (c *Collector) ObserveStage(name string, d time.Duration) {
	if c == nil {
		return
	}
	c.Histogram("stage." + name).Observe(d)
}

func nopStop() {}

// Merge folds a shard-local collector into c (nil-safe on both sides).
// Counters and histogram buckets add; labels from the shard win only for
// keys the target does not already have.
func (c *Collector) Merge(shard *Collector) {
	if c == nil || shard == nil {
		return
	}
	shard.mu.RLock()
	defer shard.mu.RUnlock()
	for name, ctr := range shard.ctrs {
		if v := ctr.Value(); v != 0 {
			c.Counter(name).Add(v)
		}
	}
	for name, h := range shard.hists {
		c.Histogram(name).merge(h)
	}
	c.mu.Lock()
	for k, v := range shard.labels {
		if _, ok := c.labels[k]; !ok {
			c.labels[k] = v
		}
	}
	c.mu.Unlock()
}

// counterNames returns the sorted counter names (deterministic output).
func (c *Collector) counterNames() []string {
	names := make([]string, 0, len(c.ctrs))
	for name := range c.ctrs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// histNames returns the sorted histogram names.
func (c *Collector) histNames() []string {
	names := make([]string, 0, len(c.hists))
	for name := range c.hists {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// StageTotals returns the total nanoseconds per "stage.*" histogram,
// keyed by bare stage name (nil-safe; empty map when nothing recorded).
func (c *Collector) StageTotals() map[string]int64 {
	out := map[string]int64{}
	if c == nil {
		return out
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	for name, h := range c.hists {
		if strings.HasPrefix(name, "stage.") && h.Count() > 0 {
			out[strings.TrimPrefix(name, "stage.")] = h.Sum()
		}
	}
	return out
}

// StageBreakdown renders a human-readable per-stage time table: one line
// per "stage.*" histogram, sorted by total time descending (ties by
// name), with count, total, mean, and share of the summed stage time.
// Returns "" when nothing was recorded (nil-safe).
func (c *Collector) StageBreakdown() string {
	if c == nil {
		return ""
	}
	c.mu.RLock()
	type stage struct {
		name  string
		count int64
		total int64
	}
	var stages []stage
	var grand int64
	for name, h := range c.hists {
		if !strings.HasPrefix(name, "stage.") {
			continue
		}
		if n := h.Count(); n > 0 {
			stages = append(stages, stage{strings.TrimPrefix(name, "stage."), n, h.Sum()})
			grand += h.Sum()
		}
	}
	c.mu.RUnlock()
	if len(stages) == 0 {
		return ""
	}
	sort.Slice(stages, func(i, j int) bool {
		if stages[i].total != stages[j].total {
			return stages[i].total > stages[j].total
		}
		return stages[i].name < stages[j].name
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %10s %12s %12s %7s\n", "stage", "count", "total", "mean", "share")
	for _, s := range stages {
		mean := time.Duration(0)
		if s.count > 0 {
			mean = time.Duration(s.total / s.count)
		}
		share := 0.0
		if grand > 0 {
			share = 100 * float64(s.total) / float64(grand)
		}
		fmt.Fprintf(&b, "%-16s %10d %12s %12s %6.1f%%\n",
			s.name, s.count, time.Duration(s.total).Round(time.Microsecond),
			mean.Round(time.Microsecond), share)
	}
	return b.String()
}
