package discrete

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/rng"
)

const testInput = `define i32 @clamp(i32 %x, i32 %low, i32 %high) {
  %t0 = icmp slt i32 %x, 0
  %t1 = select i1 %t0, i32 %low, i32 %high
  %t2 = icmp ult i32 %x, 65536
  %n = xor i1 %t2, true
  %r = select i1 %n, i32 %x, i32 %t1
  ret i32 %r
}
`

func TestFileLoopMatchesIntegrated(t *testing.T) {
	// The same seeds must yield the same verdict counts in both
	// workflows — the §V-B "exactly the same work" requirement.
	const n = 25
	const seed = 42

	mod := parser.MustParse(testInput)
	fz, err := core.New(mod, core.Options{Passes: "O2", Seed: seed, NumMutants: n})
	if err != nil {
		t.Fatal(err)
	}
	rep := fz.Run()

	loop := &FileLoop{Passes: "O2", TmpDir: t.TempDir()}
	master := rng.New(seed)
	var total Result
	for i := 0; i < n; i++ {
		r, err := loop.Iteration(testInput, master.SplitSeed())
		if err != nil {
			t.Fatal(err)
		}
		total.Valid += r.Valid
		total.Invalid += r.Invalid
		total.Unsupported += r.Unsupported
		total.Unknown += r.Unknown
		total.Crashes += r.Crashes
	}

	if got, want := total.Valid, rep.Stats.Valid; got != want {
		t.Errorf("valid: file loop %d, integrated %d", got, want)
	}
	if got, want := total.Invalid, rep.Stats.Invalid; got != want {
		t.Errorf("invalid: file loop %d, integrated %d", got, want)
	}
	if total.Invalid != 0 {
		t.Errorf("clean compiler must not miscompile; got %d invalid", total.Invalid)
	}
}

func TestProcessPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds three binaries")
	}
	wd, _ := os.Getwd()
	root := filepath.Join(wd, "..", "..")
	tools, err := BuildTools(root, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tmp := t.TempDir()
	input := filepath.Join(tmp, "input.ll")
	if err := os.WriteFile(input, []byte(testInput), 0o644); err != nil {
		t.Fatal(err)
	}
	pipe := &Pipeline{Tools: tools, Passes: "O2", TmpDir: tmp}
	var total Result
	master := rng.New(42)
	for i := 0; i < 5; i++ {
		r, err := pipe.Iteration(input, master.SplitSeed())
		if err != nil {
			t.Fatal(err)
		}
		total.Valid += r.Valid
		total.Invalid += r.Invalid
		total.Unsupported += r.Unsupported
		total.Unknown += r.Unknown
	}
	if total.Invalid != 0 || total.Crashes != 0 {
		t.Errorf("clean pipeline found problems: %+v", total)
	}
	if total.Valid == 0 {
		t.Error("no valid verdicts recorded")
	}
}
