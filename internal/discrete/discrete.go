// Package discrete implements the baseline fuzzing workflow of paper
// Fig. 2: mutation, optimization, and translation validation performed by
// three separate executables communicating through files — paying, on
// every iteration, all the overheads the integrated loop amortizes away:
// process creation and destruction, context switches, file I/O, parsing,
// and printing.
//
// The throughput experiment (§V-B) runs this pipeline and internal/core's
// integrated loop over the same inputs and seeds and compares wall-clock
// time. A second, in-process variant (FileLoop) performs the same
// serialization work without the fork/exec, isolating the process-spawn
// share of the overhead for the ablation benchmarks.
package discrete

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"

	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/parser"
	"repro/internal/tv"
)

// Tools locates the standalone executables.
type Tools struct {
	MutateBin string // cmd/mutate-tool
	OptBin    string // cmd/opt
	TVBin     string // cmd/alive-tv
}

// BuildTools compiles the three standalone tools into dir and returns
// their paths. Requires the Go toolchain (present wherever the benchmarks
// run).
func BuildTools(repoRoot, dir string) (Tools, error) {
	t := Tools{
		MutateBin: filepath.Join(dir, "mutate-tool"),
		OptBin:    filepath.Join(dir, "opt"),
		TVBin:     filepath.Join(dir, "alive-tv"),
	}
	for bin, pkg := range map[string]string{
		t.MutateBin: "./cmd/mutate-tool",
		t.OptBin:    "./cmd/opt",
		t.TVBin:     "./cmd/alive-tv",
	} {
		cmd := exec.Command("go", "build", "-o", bin, pkg)
		cmd.Dir = repoRoot
		if out, err := cmd.CombinedOutput(); err != nil {
			return Tools{}, fmt.Errorf("discrete: building %s: %v\n%s", pkg, err, out)
		}
	}
	return t, nil
}

// Result counts the verdicts of one run.
type Result struct {
	Valid, Invalid, Unsupported, Unknown, Crashes int
}

// Pipeline is the exec-based Fig. 2 workflow.
type Pipeline struct {
	Tools  Tools
	Passes string
	TmpDir string
	// TVBudget is the SAT conflict budget handed to alive-tv. It must
	// match the integrated loop's budget so both workflows do identical
	// verification work (the §V-B fairness requirement).
	TVBudget int64
}

// Iteration performs one mutate→optimize→verify cycle for the input file
// using separate processes, with the given mutant seed. It mirrors the
// Python loop described in §V-B:
//
//  1. mutate the file using a standalone mutator,
//  2. optimize the file using the standalone opt tool,
//  3. perform translation validation using the standalone alive-tv tool.
func (p *Pipeline) Iteration(inputFile string, seed uint64) (Result, error) {
	var res Result
	mutFile := filepath.Join(p.TmpDir, "mutant.ll")
	optFile := filepath.Join(p.TmpDir, "optimized.ll")

	// (1) standalone mutation: read, mutate, print, write.
	cmd := exec.Command(p.Tools.MutateBin,
		"-seed", strconv.FormatUint(seed, 10),
		"-o", mutFile, inputFile)
	if out, err := cmd.CombinedOutput(); err != nil {
		return res, fmt.Errorf("discrete: mutate-tool: %v\n%s", err, out)
	}

	// (2) standalone optimization.
	cmd = exec.Command(p.Tools.OptBin, "-passes", p.Passes, "-o", optFile, mutFile)
	if out, err := cmd.CombinedOutput(); err != nil {
		if cmd.ProcessState != nil && cmd.ProcessState.ExitCode() == 3 {
			res.Crashes++ // optimizer assertion failure
			return res, nil
		}
		return res, fmt.Errorf("discrete: opt: %v\n%s", err, out)
	}

	// (3) standalone translation validation.
	budget := p.TVBudget
	if budget == 0 {
		budget = 30000 // the integrated loop's default
	}
	cmd = exec.Command(p.Tools.TVBin,
		"-budget", strconv.FormatInt(budget, 10), "-quiet", mutFile, optFile)
	out, err := cmd.CombinedOutput()
	code := 0
	if cmd.ProcessState != nil {
		code = cmd.ProcessState.ExitCode()
	}
	switch code {
	case 0:
		res.Valid++
	case 1:
		res.Invalid++
	case 2:
		res.Unsupported++
	case 4:
		res.Unknown++
	default:
		if err != nil {
			return res, fmt.Errorf("discrete: alive-tv: %v\n%s", err, out)
		}
	}
	return res, nil
}

// FileLoop performs the same steps in-process but still through files and
// text: parse input, mutate, print to disk, re-read, re-parse, optimize,
// print, re-read, re-parse both, verify. It isolates the
// serialization/I/O overhead from the fork/exec overhead for the
// decomposition ablation (Fig. 2's individual bold boxes).
type FileLoop struct {
	Passes string
	TmpDir string
	TV     tv.Options
}

// Iteration runs one cycle for the given input text and seed.
func (l *FileLoop) Iteration(inputText string, seed uint64) (Result, error) {
	var res Result

	// Stage 1: parse, mutate, print, write.
	mod, err := parser.Parse(inputText)
	if err != nil {
		return res, err
	}
	mutantText, err := mutateToText(mod, seed)
	if err != nil {
		return res, err
	}
	mutFile := filepath.Join(l.TmpDir, "mutant.ll")
	if err := os.WriteFile(mutFile, []byte(mutantText), 0o644); err != nil {
		return res, err
	}

	// Stage 2: read, parse, optimize, print, write.
	data, err := os.ReadFile(mutFile)
	if err != nil {
		return res, err
	}
	m2, err := parser.Parse(string(data))
	if err != nil {
		return res, err
	}
	crashed := false
	func() {
		defer func() {
			if recover() != nil {
				crashed = true
			}
		}()
		passes, perr := opt.ByName(l.Passes)
		if perr != nil {
			err = perr
			return
		}
		opt.RunPasses(opt.NewContext(m2), passes)
	}()
	if err != nil {
		return res, err
	}
	if crashed {
		res.Crashes++
		return res, nil
	}
	optFile := filepath.Join(l.TmpDir, "optimized.ll")
	if err := os.WriteFile(optFile, []byte(m2.String()), 0o644); err != nil {
		return res, err
	}

	// Stage 3: read and parse both, verify.
	srcData, err := os.ReadFile(mutFile)
	if err != nil {
		return res, err
	}
	tgtData, err := os.ReadFile(optFile)
	if err != nil {
		return res, err
	}
	srcMod, err := parser.Parse(string(srcData))
	if err != nil {
		return res, err
	}
	tgtMod, err := parser.Parse(string(tgtData))
	if err != nil {
		return res, err
	}
	for _, fn := range tgtMod.Defs() {
		src := srcMod.FuncByName(fn.Name)
		if src == nil || src.IsDecl {
			continue
		}
		switch tv.Verify(srcMod, src, fn, l.TV).Verdict {
		case tv.Valid:
			res.Valid++
		case tv.Invalid:
			res.Invalid++
		case tv.Unsupported:
			res.Unsupported++
		default:
			res.Unknown++
		}
	}
	return res, nil
}

// mutateToText produces the mutant text for a parsed module and seed using
// the same engine the integrated loop uses, so both workflows perform
// identical mutation work for identical seeds (the experiment's
// "exactly the same work" requirement, §V-B).
func mutateToText(mod *ir.Module, seed uint64) (string, error) {
	mu := newSharedMutator(mod)
	return mu.Mutate(seed).String(), nil
}
