package discrete

import (
	"repro/internal/ir"
	"repro/internal/mutate"
)

// newSharedMutator builds the mutation engine with the default
// configuration shared by the integrated loop and the standalone
// mutate-tool, so seed-for-seed the two workflows generate identical
// mutants.
func newSharedMutator(mod *ir.Module) *mutate.Mutator {
	return mutate.New(mod, mutate.Config{})
}
