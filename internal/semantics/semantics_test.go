package semantics

import (
	"fmt"
	"testing"

	"repro/internal/apint"
	"repro/internal/interp"
	"repro/internal/parser"
	"repro/internal/rng"
	"repro/internal/smt"
)

// encode parses a single-function module and returns its summary and the
// context.
func encode(t *testing.T, src string) (*Summary, *Context) {
	t.Helper()
	mod, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	b := smt.NewBuilder()
	ctx := NewContext(b)
	enc := &Encoder{Ctx: ctx, Mod: mod}
	sum, err := enc.Encode(mod.Defs()[0])
	if err != nil {
		t.Fatal(err)
	}
	return sum, ctx
}

func TestStraightLinePathCount(t *testing.T) {
	sum, _ := encode(t, `define i32 @f(i32 %x) {
  %a = add i32 %x, 1
  ret i32 %a
}`)
	if len(sum.Paths) != 1 {
		t.Fatalf("paths = %d, want 1", len(sum.Paths))
	}
	if !sum.Paths[0].HasRet {
		t.Fatal("missing return value")
	}
}

func TestDiamondPathCount(t *testing.T) {
	sum, _ := encode(t, `define i32 @f(i1 %c, i32 %x) {
entry:
  br i1 %c, label %a, label %b
a:
  br label %join
b:
  br label %join
join:
  %r = phi i32 [ 1, %a ], [ 2, %b ]
  ret i32 %r
}`)
	if len(sum.Paths) != 2 {
		t.Fatalf("paths = %d, want 2", len(sum.Paths))
	}
}

func TestPathExplosionIsUnsupported(t *testing.T) {
	// 8 sequential diamonds = 256 paths > the 64-path default.
	src := `define i32 @f(i32 %x) {
entry:
  br label %d0
`
	for i := 0; i < 8; i++ {
		src += dblock(i)
	}
	src += `d8:
  ret i32 %x
}`
	mod := parser.MustParse(src)
	b := smt.NewBuilder()
	enc := &Encoder{Ctx: NewContext(b), Mod: mod}
	_, err := enc.Encode(mod.Defs()[0])
	if err == nil {
		t.Fatal("expected unsupported for path explosion")
	}
	if _, ok := err.(*UnsupportedError); !ok {
		t.Fatalf("error type %T, want *UnsupportedError", err)
	}
}

func dblock(i int) string {
	return fmt.Sprintf(`d%d:
  %%c%d = icmp ult i32 %%x, %d
  br i1 %%c%d, label %%t%d, label %%e%d
t%d:
  br label %%d%d
e%d:
  br label %%d%d
`, i, i, 100+i, i, i, i, i, i+1, i, i+1)
}

// TestEncoderAgainstInterpreter is the key differential test of the
// symbolic semantics: for random pure functions and random concrete
// inputs, evaluating the path summaries under the input must reproduce the
// interpreter's result exactly (value, poison, and UB).
func TestEncoderAgainstInterpreter(t *testing.T) {
	srcs := []string{
		`define i8 @f(i8 %x, i8 %y) {
  %a = add nsw i8 %x, %y
  %b = lshr i8 %a, 2
  %c = xor i8 %b, -1
  %m = call i8 @llvm.smax.i8(i8 %c, i8 %x)
  ret i8 %m
}`,
		`define i8 @f(i8 %x, i8 %y) {
  %a = shl nuw i8 %x, 1
  %s = call i8 @llvm.usub.sat.i8(i8 %a, i8 %y)
  %t = call i8 @llvm.sadd.sat.i8(i8 %s, i8 %y)
  ret i8 %t
}`,
		`define i8 @f(i8 %x, i8 %y) {
entry:
  %c = icmp slt i8 %x, %y
  br i1 %c, label %a, label %b
a:
  %va = sub i8 %y, %x
  br label %join
b:
  %vb = sub i8 %x, %y
  br label %join
join:
  %r = phi i8 [ %va, %a ], [ %vb, %b ]
  ret i8 %r
}`,
		`define i8 @f(i8 %x, i8 %y) {
  %d = udiv i8 %x, %y
  %r = urem i8 %x, %y
  %s = add i8 %d, %r
  ret i8 %s
}`,
		`define i8 @f(i8 %x, i8 %y) {
  %a = call i8 @llvm.abs.i8(i8 %x, i1 true)
  %z = call i8 @llvm.ctpop.i8(i8 %a)
  %c = call i8 @llvm.ctlz.i8(i8 %y, i1 false)
  %s = add i8 %z, %c
  ret i8 %s
}`,
	}
	r := rng.New(31337)
	for si, src := range srcs {
		mod := parser.MustParse(src)
		fn := mod.Defs()[0]
		b := smt.NewBuilder()
		ctx := NewContext(b)
		enc := &Encoder{Ctx: ctx, Mod: mod}
		sum, err := enc.Encode(fn)
		if err != nil {
			t.Fatalf("src %d: %v", si, err)
		}

		in := &interp.Interp{Mod: mod, Oracle: &interp.HashOracle{Seed: 1}}
		for trial := 0; trial < 200; trial++ {
			xv := r.Uint64() & apint.Mask(8)
			yv := r.Uint64() & apint.Mask(8)
			env := map[string]uint64{
				"in!0!x": xv, "in!0!x!poison": 0,
				"in!1!y": yv, "in!1!y!poison": 0,
			}
			res, err := in.Run(fn, []interp.Value{{Bits: xv}, {Bits: yv}})
			if err != nil {
				t.Fatalf("src %d: interp: %v", si, err)
			}

			// Find the path whose condition holds under env.
			taken := -1
			for pi, p := range sum.Paths {
				if smt.Eval(p.Cond, env) == 1 {
					if taken >= 0 {
						t.Fatalf("src %d: two paths active simultaneously", si)
					}
					taken = pi
				}
			}
			if taken < 0 {
				t.Fatalf("src %d: no active path for input (%d, %d)", si, xv, yv)
			}
			p := sum.Paths[taken]
			ub := smt.Eval(p.UB, env) == 1
			if ub != res.UB {
				t.Fatalf("src %d input(%d,%d): encoder UB=%v interp UB=%v", si, xv, yv, ub, res.UB)
			}
			if ub {
				continue
			}
			poison := smt.Eval(p.Ret.Poison, env) == 1
			if poison != res.Ret.Poison {
				t.Fatalf("src %d input(%d,%d): encoder poison=%v interp poison=%v",
					si, xv, yv, poison, res.Ret.Poison)
			}
			if !poison {
				val := smt.Eval(p.Ret.Bits, env)
				if val != res.Ret.Bits {
					t.Fatalf("src %d input(%d,%d): encoder=%d interp=%d",
						si, xv, yv, val, res.Ret.Bits)
				}
			}
		}
	}
}

func TestInputSharing(t *testing.T) {
	// Encoding two functions with the same context shares input variables
	// by position — the foundation of refinement checking.
	mod := parser.MustParse(`define i8 @f(i8 %x) {
  ret i8 %x
}

define i8 @g(i8 %renamed) {
  ret i8 %renamed
}`)
	b := smt.NewBuilder()
	ctx := NewContext(b)
	enc := &Encoder{Ctx: ctx, Mod: mod}
	s1, err := enc.Encode(mod.Defs()[0])
	if err != nil {
		t.Fatal(err)
	}
	s2, err := enc.Encode(mod.Defs()[1])
	if err != nil {
		t.Fatal(err)
	}
	if s1.Params[0].Bits != s2.Params[0].Bits {
		t.Error("parameter variables not shared between encodings")
	}
}

func TestCallRecords(t *testing.T) {
	sum, _ := encode(t, `declare i32 @ext(i32)
declare void @sink(ptr)

define i32 @f(i32 %x, ptr %p) {
  %a = call i32 @ext(i32 %x)
  call void @sink(ptr %p)
  %b = call i32 @ext(i32 %a)
  ret i32 %b
}`)
	p := sum.Paths[0]
	if len(p.Calls) != 3 {
		t.Fatalf("calls = %d, want 3", len(p.Calls))
	}
	if p.Calls[0].Callee != "ext" || !p.Calls[0].HasRet || !p.Calls[0].MayWrite {
		t.Errorf("call 0 misrecorded: %+v", p.Calls[0])
	}
	if p.Calls[1].Callee != "sink" || p.Calls[1].HasRet {
		t.Errorf("call 1 misrecorded: %+v", p.Calls[1])
	}
	// Calls to the same callee at different positions get different
	// result variables.
	if p.Calls[0].Ret.Bits == p.Calls[2].Ret.Bits {
		t.Error("distinct calls share a result variable")
	}
}

func TestMemoryReadOverWrite(t *testing.T) {
	sum, ctx := encode(t, `define i8 @f(ptr %p) {
  store i8 42, ptr %p
  %v = load i8, ptr %p
  ret i8 %v
}`)
	p := sum.Paths[0]
	// The loaded value must fold (or at least evaluate) to 42 regardless
	// of the pointer, when the pointer is valid.
	env := map[string]uint64{"in!0!p": 0x1000, "in!0!p!poison": 0}
	for _, v := range smt.Vars(p.Ret.Bits) {
		if _, ok := env[v.Name]; !ok {
			env[v.Name] = 7 // arbitrary initial-memory bytes
		}
	}
	if got := smt.Eval(p.Ret.Bits, env); got != 42 {
		t.Fatalf("load after store = %d, want 42", got)
	}
	_ = ctx
}

func TestUnsupportedConstructs(t *testing.T) {
	cases := []struct{ name, src string }{
		{"loop", `define void @f() {
entry:
  br label %l
l:
  br label %l
}`},
		{"ordered ptr icmp across provenance", `define i1 @f(ptr %p) {
  %s = alloca i32
  %c = icmp ult ptr %s, %p
  ret i1 %c
}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			mod := parser.MustParse(c.src)
			b := smt.NewBuilder()
			enc := &Encoder{Ctx: NewContext(b), Mod: mod}
			if _, err := enc.Encode(mod.Defs()[0]); err == nil {
				t.Fatalf("%s should be unsupported", c.name)
			}
		})
	}
}
