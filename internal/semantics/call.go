package semantics

import (
	"repro/internal/apint"
	"repro/internal/ir"
	"repro/internal/smt"
)

// call encodes a call instruction: intrinsics get precise semantics;
// unknown callees become sequence-matched external calls with
// nondeterministic results and memory havoc.
func (e *Encoder) call(st *state, in *ir.Instr, args []Value) error {
	b := e.Ctx.B

	if kind, ok := in.IsIntrinsicCall(); ok {
		return e.intrinsic(st, in, kind, args)
	}

	// External call: find the declaration for attribute information.
	var attrs ir.FuncAttrs
	var declParams []*ir.Param
	if e.Mod != nil {
		if decl := e.Mod.FuncByName(in.Callee); decl != nil {
			attrs = decl.Attrs
			declParams = decl.Params
		}
	}

	// Passing poison to a noundef parameter is UB.
	for i, a := range args {
		if i < len(declParams) && declParams[i].Attrs.Noundef {
			st.ub = b.Or(st.ub, a.Poison)
		}
	}

	// Pointer arguments escape their provenance: the callee may retain and
	// later write through them.
	for _, a := range args {
		if a.Prov > ProvExternal {
			st.escaped[a.Prov] = true
		}
	}

	mayWrite := !(attrs.Readnone || attrs.Readonly)
	rec := CallRecord{
		Callee:    in.Callee,
		Args:      args,
		MayWrite:  mayWrite,
		Droppable: !mayWrite && attrs.Willreturn && attrs.Nounwind,
		Index:     len(st.calls),
	}
	if !attrs.Readnone {
		rec.MemAtCall = st.mem.Clone()
	}

	if mayWrite {
		provs := map[int]bool{ProvExternal: true}
		for p := range st.escaped {
			provs[p] = true
		}
		st.mem.Havoc(provs)
	}

	if !ir.IsVoid(in.Ty) {
		var w int
		prov := ProvNone
		if ir.IsPtr(in.Ty) {
			w = PtrBits
			prov = ProvExternal
		} else {
			w, _ = ir.IsInt(in.Ty)
		}
		ret := Value{
			Bits:   e.Ctx.CallRet(rec.Index, in.Callee, w),
			Poison: e.Ctx.CallRet(rec.Index, in.Callee+"!poison", 1),
			Prov:   prov,
		}
		rec.Ret, rec.HasRet = ret, true
		st.env[in] = ret
	}
	st.calls = append(st.calls, rec)
	return nil
}

// intrinsic encodes the intrinsics with precise models.
func (e *Encoder) intrinsic(st *state, in *ir.Instr, kind ir.IntrinsicKind, args []Value) error {
	b := e.Ctx.B

	switch kind {
	case ir.IntrinsicAssume:
		// assume(false) and assume(poison) are immediate UB; otherwise the
		// condition becomes a path fact.
		c := args[0]
		st.ub = b.Or(st.ub, b.Or(c.Poison, b.Not(c.Bits)))
		return nil
	}

	w := args[0].Bits.W
	x := args[0]
	var bits *smt.Term
	poison := x.Poison

	twoOp := func(f func(a, c *smt.Term) *smt.Term) {
		y := args[1]
		poison = b.Or(poison, y.Poison)
		bits = f(x.Bits, y.Bits)
	}

	switch kind {
	case ir.IntrinsicSMax:
		twoOp(func(a, c *smt.Term) *smt.Term { return b.Ite(b.Slt(a, c), c, a) })
	case ir.IntrinsicSMin:
		twoOp(func(a, c *smt.Term) *smt.Term { return b.Ite(b.Slt(a, c), a, c) })
	case ir.IntrinsicUMax:
		twoOp(func(a, c *smt.Term) *smt.Term { return b.Ite(b.Ult(a, c), c, a) })
	case ir.IntrinsicUMin:
		twoOp(func(a, c *smt.Term) *smt.Term { return b.Ite(b.Ult(a, c), a, c) })
	case ir.IntrinsicUAddSat:
		twoOp(func(a, c *smt.Term) *smt.Term {
			s := b.Add(a, c)
			return b.Ite(b.Ult(s, a), b.Const(w, apint.Mask(w)), s)
		})
	case ir.IntrinsicUSubSat:
		twoOp(func(a, c *smt.Term) *smt.Term {
			return b.Ite(b.Ult(a, c), b.Const(w, 0), b.Sub(a, c))
		})
	case ir.IntrinsicSAddSat:
		twoOp(func(a, c *smt.Term) *smt.Term {
			s := b.Add(a, c)
			over := signedAddOverflow(b, a, c, s)
			neg := b.Extract(a, w-1, w-1)
			sat := b.Ite(b.Eq(neg, b.Const(1, 1)),
				b.Const(w, minSignedBits(w)),
				b.Const(w, apint.Mask(w)>>1))
			return b.Ite(over, sat, s)
		})
	case ir.IntrinsicSSubSat:
		twoOp(func(a, c *smt.Term) *smt.Term {
			s := b.Sub(a, c)
			over := signedSubOverflow(b, a, c, s)
			neg := b.Extract(a, w-1, w-1)
			sat := b.Ite(b.Eq(neg, b.Const(1, 1)),
				b.Const(w, minSignedBits(w)),
				b.Const(w, apint.Mask(w)>>1))
			return b.Ite(over, sat, s)
		})
	case ir.IntrinsicAbs:
		// args[1] is the i1 int_min_is_poison flag.
		flag := args[1]
		poison = b.Or(poison, flag.Poison)
		isMin := b.Eq(x.Bits, b.Const(w, minSignedBits(w)))
		poison = b.Or(poison, b.And(flag.Bits, isMin))
		neg := b.Extract(x.Bits, w-1, w-1)
		bits = b.Ite(b.Eq(neg, b.Const(1, 1)), b.Neg(x.Bits), x.Bits)
	case ir.IntrinsicBswap:
		if w%16 != 0 {
			return &UnsupportedError{e.fnName(in), "bswap at width not a multiple of 16"}
		}
		n := w / 8
		var acc *smt.Term
		for i := 0; i < n; i++ {
			byteI := b.Extract(x.Bits, 8*i+7, 8*i)
			ext := b.ZExt(byteI, w)
			sh := uint64(8 * (n - 1 - i))
			if sh > 0 {
				ext = b.Shl(ext, b.Const(w, sh))
			}
			if acc == nil {
				acc = ext
			} else {
				acc = b.Or(acc, ext)
			}
		}
		bits = acc
	case ir.IntrinsicCtpop:
		acc := b.Const(w, 0)
		for i := 0; i < w; i++ {
			acc = b.Add(acc, b.ZExt(b.Extract(x.Bits, i, i), w))
		}
		bits = acc
	case ir.IntrinsicCtlz, ir.IntrinsicCttz:
		flag := args[1]
		poison = b.Or(poison, flag.Poison)
		isZero := b.Eq(x.Bits, b.Const(w, 0))
		poison = b.Or(poison, b.And(flag.Bits, isZero))
		// Fold over bits from the counted end: count = first set bit index.
		acc := b.Const(w, uint64(w)) // value when x == 0
		if kind == ir.IntrinsicCtlz {
			for i := 0; i < w; i++ {
				// scan from LSB upward so the MSB check ends up outermost
				bit := b.Extract(x.Bits, i, i)
				acc = b.Ite(b.Eq(bit, b.Const(1, 1)), b.Const(w, uint64(w-1-i)), acc)
			}
		} else {
			for i := w - 1; i >= 0; i-- {
				bit := b.Extract(x.Bits, i, i)
				acc = b.Ite(b.Eq(bit, b.Const(1, 1)), b.Const(w, uint64(i)), acc)
			}
		}
		bits = acc
	default:
		return &UnsupportedError{e.fnName(in), "intrinsic " + in.Callee + " not modelled"}
	}

	st.env[in] = Value{Bits: bits, Poison: poison, Prov: ProvNone}
	return nil
}
