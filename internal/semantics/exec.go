package semantics

import (
	"fmt"

	"repro/internal/apint"
	"repro/internal/ir"
	"repro/internal/smt"
)

// UnsupportedError reports an IR construct outside the encodable fragment.
// The fuzzer treats these the way the paper treats Alive2 errors: the
// function is dropped from the campaign (§III-A), never reported as a bug.
type UnsupportedError struct {
	Fn     string
	Reason string
}

func (e *UnsupportedError) Error() string {
	return fmt.Sprintf("semantics: @%s unsupported: %s", e.Fn, e.Reason)
}

// DefaultMaxPaths bounds path enumeration per function.
const DefaultMaxPaths = 64

// Encoder translates functions into symbolic summaries against a shared
// Context. Encode the source and the target of a refinement query with the
// same Encoder (or at least the same Context) so inputs, initial memory,
// freeze choices, and call results are shared.
type Encoder struct {
	Ctx *Context
	// Mod resolves callee declarations for attribute lookup; may be nil.
	Mod *ir.Module
	// MaxPaths bounds path enumeration (0 means DefaultMaxPaths).
	MaxPaths int
}

// state is one in-progress symbolic execution.
type state struct {
	cond    *smt.Term
	ub      *smt.Term
	env     map[ir.Value]Value
	mem     *Memory
	calls   []CallRecord
	escaped map[int]bool
}

func (s *state) clone() *state {
	n := &state{
		cond:    s.cond,
		ub:      s.ub,
		env:     make(map[ir.Value]Value, len(s.env)),
		mem:     s.mem.Clone(),
		calls:   append([]CallRecord(nil), s.calls...),
		escaped: make(map[int]bool, len(s.escaped)),
	}
	for k, v := range s.env {
		n.env[k] = v
	}
	for k, v := range s.escaped {
		n.escaped[k] = v
	}
	return n
}

// Encode produces the symbolic summary of f.
func (e *Encoder) Encode(f *ir.Function) (*Summary, error) {
	if f.IsDecl {
		return nil, &UnsupportedError{f.Name, "declaration has no body"}
	}
	if f.HasLoop() {
		return nil, &UnsupportedError{f.Name, "function has loops"}
	}
	maxPaths := e.MaxPaths
	if maxPaths == 0 {
		maxPaths = DefaultMaxPaths
	}
	b := e.Ctx.B

	sum := &Summary{Fn: f.Name}
	init := &state{
		cond:    b.Bool(true),
		ub:      b.Bool(false),
		env:     make(map[ir.Value]Value),
		mem:     NewMemory(e.Ctx),
		escaped: make(map[int]bool),
	}
	for i, p := range f.Params {
		v := e.Ctx.Input(i, p)
		init.env[p] = v
		sum.Params = append(sum.Params, v)
	}

	// Static alloca numbering (shared shape between source and target).
	allocaProv := make(map[*ir.Instr]int)
	next := 1
	f.ForEachInstr(func(_ *ir.Block, _ int, in *ir.Instr) bool {
		if in.Op == ir.OpAlloca {
			allocaProv[in] = next
			next++
		}
		return true
	})

	type work struct {
		st   *state
		blk  *ir.Block
		pred *ir.Block // for phi resolution; nil at entry
	}
	stack := []work{{init, f.Entry(), nil}}

	for len(stack) > 0 {
		w := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if len(sum.Paths)+len(stack) >= maxPaths {
			return nil, &UnsupportedError{f.Name, fmt.Sprintf("more than %d paths", maxPaths)}
		}
		st := w.st

		// Resolve phis against the incoming edge first (all reads before
		// writes, since LLVM phi semantics are parallel).
		phis := w.blk.Phis()
		if len(phis) > 0 {
			vals := make([]Value, len(phis))
			for pi, phi := range phis {
				found := false
				for ai, pb := range phi.Preds {
					if pb == w.pred {
						v, err := e.operand(st, phi.Args[ai])
						if err != nil {
							return nil, err
						}
						vals[pi] = v
						found = true
						break
					}
				}
				if !found {
					return nil, &UnsupportedError{f.Name,
						fmt.Sprintf("phi %%%s missing incoming for %s", phi.Nm, w.pred.Nm)}
				}
			}
			for pi, phi := range phis {
				st.env[phi] = vals[pi]
			}
		}

		terminated := false
		for _, in := range w.blk.Instrs[len(phis):] {
			switch in.Op {
			case ir.OpRet:
				p := Path{Cond: st.cond, UB: st.ub, Calls: st.calls, FinalMem: st.mem}
				if len(in.Args) == 1 {
					v, err := e.operand(st, in.Args[0])
					if err != nil {
						return nil, err
					}
					p.Ret, p.HasRet = v, true
				}
				sum.Paths = append(sum.Paths, p)
				terminated = true
			case ir.OpUnreachable:
				sum.Paths = append(sum.Paths, Path{
					Cond: st.cond, UB: b.Bool(true), Unreachable: true,
					Calls: st.calls, FinalMem: st.mem,
				})
				terminated = true
			case ir.OpBr:
				stack = append(stack, work{st, in.Targets[0], w.blk})
				terminated = true
			case ir.OpCondBr:
				c, err := e.operand(st, in.Args[0])
				if err != nil {
					return nil, err
				}
				// Branching on poison is UB.
				st.ub = b.Or(st.ub, c.Poison)
				tSt := st.clone()
				tSt.cond = b.And(tSt.cond, c.Bits)
				fSt := st
				fSt.cond = b.And(fSt.cond, b.Not(c.Bits))
				stack = append(stack, work{tSt, in.Targets[0], w.blk})
				stack = append(stack, work{fSt, in.Targets[1], w.blk})
				terminated = true
			default:
				if err := e.step(st, in, allocaProv); err != nil {
					return nil, err
				}
			}
			if terminated {
				break
			}
		}
		if !terminated {
			return nil, &UnsupportedError{f.Name, "block without terminator"}
		}
	}
	return sum, nil
}

// operand resolves an IR operand to its symbolic value in st.
func (e *Encoder) operand(st *state, v ir.Value) (Value, error) {
	b := e.Ctx.B
	switch x := v.(type) {
	case *ir.Const:
		return Value{Bits: b.Const(x.Ty.Bits, x.Val), Poison: b.Bool(false), Prov: ProvNone}, nil
	case *ir.Poison:
		w := 1
		prov := ProvNone
		if iw, ok := ir.IsInt(x.Ty); ok {
			w = iw
		} else if ir.IsPtr(x.Ty) {
			w = PtrBits
			prov = ProvExternal
		}
		return Value{Bits: b.Const(w, 0), Poison: b.Bool(true), Prov: prov}, nil
	case *ir.NullPtr:
		return Value{Bits: b.Const(PtrBits, 0), Poison: b.Bool(false), Prov: ProvExternal}, nil
	default:
		if val, ok := st.env[v]; ok {
			return val, nil
		}
		return Value{}, fmt.Errorf("semantics: operand %s not in scope", ir.OperandString(v))
	}
}

// step executes one non-terminator, non-phi instruction.
func (e *Encoder) step(st *state, in *ir.Instr, allocaProv map[*ir.Instr]int) error {
	b := e.Ctx.B
	args := make([]Value, len(in.Args))
	for i, a := range in.Args {
		v, err := e.operand(st, a)
		if err != nil {
			return err
		}
		args[i] = v
	}

	switch {
	case in.Op.IsBinary():
		v, ub := e.binary(in, args[0], args[1])
		st.ub = b.Or(st.ub, ub)
		st.env[in] = v
		return nil

	case in.Op == ir.OpICmp:
		v, err := e.icmp(in, args[0], args[1])
		if err != nil {
			return err
		}
		st.env[in] = v
		return nil

	case in.Op == ir.OpSelect:
		c, x, y := args[0], args[1], args[2]
		prov := ProvNone
		if x.Prov != ProvNone || y.Prov != ProvNone {
			if x.Prov != y.Prov {
				return &UnsupportedError{e.fnName(in), "select over pointers of different provenance"}
			}
			prov = x.Prov
		}
		st.env[in] = Value{
			Bits:   b.Ite(c.Bits, x.Bits, y.Bits),
			Poison: b.Or(c.Poison, b.Ite(c.Bits, x.Poison, y.Poison)),
			Prov:   prov,
		}
		return nil

	case in.Op == ir.OpZExt, in.Op == ir.OpSExt, in.Op == ir.OpTrunc:
		to, _ := ir.IsInt(in.Ty)
		x := args[0]
		var bits *smt.Term
		switch in.Op {
		case ir.OpZExt:
			bits = b.ZExt(x.Bits, to)
		case ir.OpSExt:
			bits = b.SExt(x.Bits, to)
		default:
			bits = b.Trunc(x.Bits, to)
		}
		st.env[in] = Value{Bits: bits, Poison: x.Poison, Prov: ProvNone}
		return nil

	case in.Op == ir.OpFreeze:
		x := args[0]
		w := x.Bits.W
		fv := e.Ctx.FreezeVar(in.Nm, w)
		st.env[in] = Value{
			Bits:   b.Ite(x.Poison, fv, x.Bits),
			Poison: b.Bool(false),
			Prov:   x.Prov,
		}
		return nil

	case in.Op == ir.OpAlloca:
		prov := allocaProv[in]
		st.mem.AddAlloca(prov)
		// The alloca's address within its own provenance: offset 0... but
		// GEPs move within the provenance, so use a fixed symbolic base
		// so distinct offsets stay distinguishable. A constant base of 0
		// suffices because addresses are only compared within the
		// provenance.
		st.env[in] = Value{Bits: b.Const(PtrBits, 0), Poison: b.Bool(false), Prov: prov}
		return nil

	case in.Op == ir.OpGEP:
		p, off := args[0], args[1]
		if p.Prov == ProvNone {
			return &UnsupportedError{e.fnName(in), "gep on non-pointer"}
		}
		st.env[in] = Value{
			Bits:   b.Add(p.Bits, b.SExt(off.Bits, PtrBits)),
			Poison: b.Or(p.Poison, off.Poison),
			Prov:   p.Prov,
		}
		return nil

	case in.Op == ir.OpLoad:
		w, ok := ir.IsInt(in.Ty)
		if !ok {
			return &UnsupportedError{e.fnName(in), "load of non-integer type " + in.Ty.String()}
		}
		p := args[0]
		st.ub = b.Or(st.ub, e.accessUB(p))
		st.env[in] = st.mem.loadValue(p.Prov, p.Bits, w)
		return nil

	case in.Op == ir.OpStore:
		v, p := args[0], args[1]
		w, ok := ir.IsInt(in.Args[0].Type())
		if !ok {
			return &UnsupportedError{e.fnName(in), "store of non-integer type"}
		}
		st.ub = b.Or(st.ub, e.accessUB(p))
		st.mem.storeValue(p.Prov, p.Bits, v, w)
		return nil

	case in.Op == ir.OpCall:
		return e.call(st, in, args)
	}
	return &UnsupportedError{e.fnName(in), "unhandled opcode " + in.Op.String()}
}

func (e *Encoder) fnName(in *ir.Instr) string {
	if in.Parent() != nil && in.Parent().Parent() != nil {
		return in.Parent().Parent().Name
	}
	return "?"
}

// accessUB is the UB condition for dereferencing p: poison address, or a
// null (address-zero) external pointer.
func (e *Encoder) accessUB(p Value) *smt.Term {
	b := e.Ctx.B
	ub := p.Poison
	if p.Prov == ProvExternal {
		ub = b.Or(ub, b.Eq(p.Bits, b.Const(PtrBits, 0)))
	}
	if p.Prov == ProvNone {
		return b.Bool(true) // dereferencing a non-pointer is malformed IR
	}
	return ub
}

// icmp encodes the ten predicates, including the pointer cases the model
// supports (same-provenance comparisons and comparisons against null).
func (e *Encoder) icmp(in *ir.Instr, x, y Value) (Value, error) {
	b := e.Ctx.B
	poison := b.Or(x.Poison, y.Poison)
	if x.Prov != ProvNone || y.Prov != ProvNone {
		// Pointer comparison.
		if x.Prov != y.Prov {
			// Alloca vs external (incl. null): allocas are distinct live
			// objects, so eq is false / ne is true; ordered comparisons
			// between different objects are not supported.
			switch in.Pred {
			case ir.EQ:
				return Value{Bits: b.Bool(false), Poison: poison, Prov: ProvNone}, nil
			case ir.NE:
				return Value{Bits: b.Bool(true), Poison: poison, Prov: ProvNone}, nil
			default:
				return Value{}, &UnsupportedError{e.fnName(in), "ordered icmp across provenances"}
			}
		}
	}
	var bits *smt.Term
	w := x.Bits.W
	switch in.Pred {
	case ir.EQ:
		bits = b.Eq(x.Bits, y.Bits)
	case ir.NE:
		bits = b.Ne(x.Bits, y.Bits)
	case ir.ULT:
		bits = b.Ult(x.Bits, y.Bits)
	case ir.ULE:
		bits = b.Ule(x.Bits, y.Bits)
	case ir.UGT:
		bits = b.Ugt(x.Bits, y.Bits)
	case ir.UGE:
		bits = b.Not(b.Ult(x.Bits, y.Bits))
	case ir.SLT:
		bits = b.Slt(x.Bits, y.Bits)
	case ir.SLE:
		bits = b.Sle(x.Bits, y.Bits)
	case ir.SGT:
		bits = b.Sgt(x.Bits, y.Bits)
	case ir.SGE:
		bits = b.Not(b.Slt(x.Bits, y.Bits))
	default:
		return Value{}, fmt.Errorf("semantics: invalid icmp predicate")
	}
	_ = w
	return Value{Bits: bits, Poison: poison, Prov: ProvNone}, nil
}

// binary encodes a binary arithmetic instruction, returning the value and
// any immediate-UB condition (division only).
func (e *Encoder) binary(in *ir.Instr, x, y Value) (Value, *smt.Term) {
	b := e.Ctx.B
	w := x.Bits.W
	poison := b.Or(x.Poison, y.Poison)
	ub := b.Bool(false)
	var bits *smt.Term

	switch in.Op {
	case ir.OpAdd:
		bits = b.Add(x.Bits, y.Bits)
		if in.Nuw {
			poison = b.Or(poison, b.Ult(bits, x.Bits)) // carry out
		}
		if in.Nsw {
			poison = b.Or(poison, signedAddOverflow(b, x.Bits, y.Bits, bits))
		}
	case ir.OpSub:
		bits = b.Sub(x.Bits, y.Bits)
		if in.Nuw {
			poison = b.Or(poison, b.Ult(x.Bits, y.Bits)) // borrow
		}
		if in.Nsw {
			poison = b.Or(poison, signedSubOverflow(b, x.Bits, y.Bits, bits))
		}
	case ir.OpMul:
		bits = b.Mul(x.Bits, y.Bits)
		if in.Nuw {
			poison = b.Or(poison, unsignedMulOverflow(b, x.Bits, y.Bits, w))
		}
		if in.Nsw {
			poison = b.Or(poison, signedMulOverflow(b, x.Bits, y.Bits, bits, w))
		}
	case ir.OpUDiv, ir.OpURem, ir.OpSDiv, ir.OpSRem:
		// Division by zero or by poison is immediate UB; poison dividends
		// yield poison results.
		ub = b.Or(y.Poison, b.Eq(y.Bits, b.Const(w, 0)))
		poison = x.Poison
		switch in.Op {
		case ir.OpUDiv:
			bits = b.UDiv(x.Bits, y.Bits)
			if in.Exact {
				poison = b.Or(poison, b.Ne(b.URem(x.Bits, y.Bits), b.Const(w, 0)))
			}
		case ir.OpURem:
			bits = b.URem(x.Bits, y.Bits)
		case ir.OpSDiv:
			bits = b.SDiv(x.Bits, y.Bits)
			// INT_MIN / -1 overflows: immediate UB per LLVM.
			ub = b.Or(ub, b.And(
				b.Eq(x.Bits, b.Const(w, minSignedBits(w))),
				b.Eq(y.Bits, b.Const(w, apint.Mask(w)))))
			if in.Exact {
				poison = b.Or(poison, b.Ne(b.SRem(x.Bits, y.Bits), b.Const(w, 0)))
			}
		default:
			bits = b.SRem(x.Bits, y.Bits)
			ub = b.Or(ub, b.And(
				b.Eq(x.Bits, b.Const(w, minSignedBits(w))),
				b.Eq(y.Bits, b.Const(w, apint.Mask(w)))))
		}
	case ir.OpShl, ir.OpLShr, ir.OpAShr:
		amtOK := b.Ult(y.Bits, b.Const(w, uint64(w)))
		poison = b.Or(poison, b.Not(amtOK))
		switch in.Op {
		case ir.OpShl:
			bits = b.Shl(x.Bits, y.Bits)
			if in.Nuw {
				poison = b.Or(poison, b.Ne(b.LShr(bits, y.Bits), x.Bits))
			}
			if in.Nsw {
				poison = b.Or(poison, b.Ne(b.AShr(bits, y.Bits), x.Bits))
			}
		case ir.OpLShr:
			bits = b.LShr(x.Bits, y.Bits)
			if in.Exact {
				poison = b.Or(poison, lostBits(b, x.Bits, y.Bits, w))
			}
		default:
			bits = b.AShr(x.Bits, y.Bits)
			if in.Exact {
				poison = b.Or(poison, lostBits(b, x.Bits, y.Bits, w))
			}
		}
	case ir.OpAnd:
		bits = b.And(x.Bits, y.Bits)
	case ir.OpOr:
		bits = b.Or(x.Bits, y.Bits)
	case ir.OpXor:
		bits = b.Xor(x.Bits, y.Bits)
	default:
		panic("semantics: binary on " + in.Op.String())
	}
	return Value{Bits: bits, Poison: poison, Prov: ProvNone}, ub
}

func minSignedBits(w int) uint64 { return 1 << uint(w-1) }

// signedAddOverflow: same-sign operands whose sum has the opposite sign.
func signedAddOverflow(b *smt.Builder, x, y, sum *smt.Term) *smt.Term {
	w := x.W
	sx := b.Extract(x, w-1, w-1)
	sy := b.Extract(y, w-1, w-1)
	ss := b.Extract(sum, w-1, w-1)
	return b.And(b.Not(b.Xor(sx, sy)), b.Xor(ss, sx))
}

// signedSubOverflow: operands of differing sign whose difference has the
// sign of the subtrahend.
func signedSubOverflow(b *smt.Builder, x, y, diff *smt.Term) *smt.Term {
	w := x.W
	sx := b.Extract(x, w-1, w-1)
	sy := b.Extract(y, w-1, w-1)
	sd := b.Extract(diff, w-1, w-1)
	return b.And(b.Xor(sx, sy), b.Xor(sd, sx))
}

// unsignedMulOverflow: x*y exceeds 2^w - 1, detected without widening via
// y != 0 ∧ x > (2^w-1)/y.
func unsignedMulOverflow(b *smt.Builder, x, y *smt.Term, w int) *smt.Term {
	ones := b.Const(w, apint.Mask(w))
	return b.And(
		b.Ne(y, b.Const(w, 0)),
		b.Ugt(x, b.UDiv(ones, y)))
}

// signedMulOverflow uses the divide-back check plus the two INT_MIN×-1
// corner cases.
func signedMulOverflow(b *smt.Builder, x, y, prod *smt.Term, w int) *smt.Term {
	zero := b.Const(w, 0)
	minS := b.Const(w, minSignedBits(w))
	negOne := b.Const(w, apint.Mask(w))
	corner := b.Or(
		b.And(b.Eq(x, negOne), b.Eq(y, minS)),
		b.And(b.Eq(y, negOne), b.Eq(x, minS)))
	divBack := b.And(b.Ne(x, zero), b.Ne(b.SDiv(prod, x), y))
	return b.Or(corner, divBack)
}

// lostBits reports whether right-shifting x by amt discards set bits
// (x & ~(ones << amt) != 0), the exact-flag violation.
func lostBits(b *smt.Builder, x, amt *smt.Term, w int) *smt.Term {
	ones := b.Const(w, apint.Mask(w))
	mask := b.Not(b.Shl(ones, amt))
	return b.Ne(b.And(x, mask), b.Const(w, 0))
}
