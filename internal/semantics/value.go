// Package semantics gives the IR a formal meaning as SMT bitvector terms,
// in the style of Alive2: every SSA value becomes a pair ⟨bits, poison⟩,
// every execution path carries an undefined-behaviour condition, and memory
// is a byte-granular store with provenance. The translation validator
// (internal/tv) builds its refinement queries on top of these summaries.
//
// The model (documented in DESIGN.md §4):
//
//   - undef is approximated as poison;
//   - all pointer parameters share one "external" provenance (so they may
//     alias each other), while each alloca gets a fresh provenance that
//     aliases nothing — matching LLVM's object model;
//   - unknown calls are sequence-matched between source and target, havoc
//     memory (epoch bump) when they may write, and return shared
//     nondeterministic values;
//   - functions with loops are not encoded (callers drop them, as the
//     paper drops Alive2-unsupported functions in §III-A).
package semantics

import (
	"repro/internal/smt"
)

// Provenance identifiers. ProvNone marks non-pointer values; ProvExternal
// is the shared provenance of caller-visible memory (all pointer
// parameters and pointers returned by calls); positive values identify
// allocas.
const (
	ProvNone     = -1
	ProvExternal = 0
)

// PtrBits is the width of pointer addresses.
const PtrBits = 64

// Value is the symbolic denotation of an SSA value: its bits, a bv1 poison
// flag, and (for pointers) a static provenance.
type Value struct {
	Bits   *smt.Term // width = type width; pointers use PtrBits
	Poison *smt.Term // bv1; 1 means the value is poison
	Prov   int
}

// Byte is one symbolic memory byte.
type Byte struct {
	Bits   *smt.Term // bv8
	Poison *smt.Term // bv1
}

// CallRecord captures one call performed along a path, in order. The
// translation validator matches source and target records positionally.
type CallRecord struct {
	Callee   string
	Args     []Value
	MayWrite bool // callee not readnone/readonly: memory was havocked
	// Droppable marks calls whose callee attributes permit deleting the
	// call outright (readnone/readonly + willreturn + nounwind).
	Droppable bool
	// Ret is the symbolic return value (zero Value for void callees). It
	// is a shared nondeterministic variable keyed by the call's position,
	// so matched source/target calls observe the same callee behaviour.
	Ret Value
	// HasRet distinguishes void calls.
	HasRet bool
	// MemAtCall snapshots the memory visible to the callee at the call
	// site, so the validator can require the target to present refined
	// memory to the same callee.
	MemAtCall *Memory
	// Index is the position of this call on its path (used for shared
	// return-variable naming).
	Index int
}

// Path is the summary of one loop-free execution path.
type Path struct {
	// Cond is the bv1 path condition over the shared input variables (and
	// call-return variables).
	Cond *smt.Term
	// UB is the bv1 condition under which this path triggers undefined
	// behaviour.
	UB *smt.Term
	// Ret is the returned value; HasRet is false for void returns and
	// paths ending in unreachable.
	Ret    Value
	HasRet bool
	// Unreachable marks paths that end in an unreachable terminator
	// (executing one is UB).
	Unreachable bool
	// Calls lists the calls performed, in order.
	Calls []CallRecord
	// FinalMem is the memory at the return point.
	FinalMem *Memory
}

// Summary is the full symbolic description of a function.
type Summary struct {
	Fn     string
	Paths  []Path
	Params []Value // shared input values, in parameter order
}
