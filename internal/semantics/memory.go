package semantics

import (
	"repro/internal/smt"
)

// memWrite is a single symbolic byte write.
type memWrite struct {
	prov int
	addr *smt.Term // bv64
	b    Byte
}

// Memory is the symbolic memory state along one path: a newest-last list
// of byte writes over per-provenance epochs of initial content. Different
// provenances never alias; addresses within a provenance alias freely.
type Memory struct {
	ctx    *Context
	writes []memWrite
	// epochs tracks the havoc generation per provenance. Missing entries
	// mean epoch 0.
	epochs map[int]int
	// uninit marks provenances whose initial content is poison (fresh
	// allocas at epoch 0).
	uninit map[int]bool
}

// NewMemory creates the entry-state memory.
func NewMemory(ctx *Context) *Memory {
	return &Memory{
		ctx:    ctx,
		epochs: make(map[int]int),
		uninit: make(map[int]bool),
	}
}

// Clone returns an independent copy (used when execution forks at a
// conditional branch).
func (m *Memory) Clone() *Memory {
	n := &Memory{
		ctx:    m.ctx,
		writes: append([]memWrite(nil), m.writes...),
		epochs: make(map[int]int, len(m.epochs)),
		uninit: make(map[int]bool, len(m.uninit)),
	}
	for k, v := range m.epochs {
		n.epochs[k] = v
	}
	for k, v := range m.uninit {
		n.uninit[k] = v
	}
	return n
}

// AddAlloca registers a fresh alloca provenance with poison (uninitialized)
// content.
func (m *Memory) AddAlloca(prov int) {
	m.uninit[prov] = true
}

// PutByte appends a byte write.
func (m *Memory) PutByte(prov int, addr *smt.Term, b Byte) {
	m.writes = append(m.writes, memWrite{prov: prov, addr: addr, b: b})
}

// GetByte reads the byte at (prov, addr): the newest matching write wins,
// falling back to the provenance's current-epoch initial content.
func (m *Memory) GetByte(prov int, addr *smt.Term) Byte {
	bld := m.ctx.B
	var base Byte
	if m.uninit[prov] && m.epochs[prov] == 0 {
		// Uninitialized alloca: content is poison.
		m.ctx.nextAux++
		base = Byte{Bits: bld.Const(8, 0), Poison: bld.Bool(true)}
	} else {
		base = m.ctx.InitByte(prov, m.epochs[prov], addr)
	}
	result := base
	for _, w := range m.writes {
		if w.prov != prov {
			continue
		}
		hit := bld.Eq(addr, w.addr)
		result = Byte{
			Bits:   bld.Ite(hit, w.b.Bits, result.Bits),
			Poison: bld.Ite(hit, w.b.Poison, result.Poison),
		}
	}
	return result
}

// Havoc invalidates the content of the given provenances (a call that may
// write memory ran): their pending writes are discarded and their epoch is
// advanced, so subsequent reads see fresh shared initial content.
func (m *Memory) Havoc(provs map[int]bool) {
	kept := m.writes[:0:0]
	for _, w := range m.writes {
		if !provs[w.prov] {
			kept = append(kept, w)
		}
	}
	m.writes = kept
	for p := range provs {
		m.epochs[p]++
	}
}

// Epoch returns the provenance's havoc generation.
func (m *Memory) Epoch(prov int) int { return m.epochs[prov] }

// storeValue writes an integer value of width w (bits) little-endian as
// ceil(w/8) bytes at addr within prov.
func (m *Memory) storeValue(prov int, addr *smt.Term, v Value, w int) {
	bld := m.ctx.B
	nBytes := (w + 7) / 8
	full := bld.ZExt(v.Bits, nBytes*8)
	for k := 0; k < nBytes; k++ {
		byteTerm := bld.Extract(full, 8*k+7, 8*k)
		a := bld.Add(addr, bld.Const(PtrBits, uint64(k)))
		m.PutByte(prov, a, Byte{Bits: byteTerm, Poison: v.Poison})
	}
}

// loadValue reads an integer value of width w at addr within prov; the
// result is poison if any constituent byte is poison.
func (m *Memory) loadValue(prov int, addr *smt.Term, w int) Value {
	bld := m.ctx.B
	nBytes := (w + 7) / 8
	var bits *smt.Term
	poison := bld.Bool(false)
	for k := 0; k < nBytes; k++ {
		a := bld.Add(addr, bld.Const(PtrBits, uint64(k)))
		bt := m.GetByte(prov, a)
		poison = bld.Or(poison, bt.Poison)
		ext := bld.ZExt(bt.Bits, nBytes*8)
		if k > 0 {
			ext = bld.Shl(ext, bld.Const(nBytes*8, uint64(8*k)))
		}
		if bits == nil {
			bits = ext
		} else {
			bits = bld.Or(bits, ext)
		}
	}
	return Value{Bits: bld.Trunc(bits, w), Poison: poison, Prov: ProvNone}
}
