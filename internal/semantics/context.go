package semantics

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/smt"
)

// Context holds the state shared between the source and target encodings
// of one refinement query: the input variables, the initial-memory
// witness tables (Ackermann-expanded reads), freeze variables, and the
// accumulated axioms that any model must satisfy.
type Context struct {
	B *smt.Builder

	axioms *smt.Term // bv1 conjunction

	inputs    map[int]Value // by parameter index
	initReads map[memEpochKey][]memWitness
	freeze    map[string]*smt.Term
	callRets  map[string]*smt.Term
	nextAux   int
}

type memEpochKey struct {
	prov  int
	epoch int
}

type memWitness struct {
	addr *smt.Term
	val  *smt.Term // bv8
}

// NewContext creates a shared encoding context.
func NewContext(b *smt.Builder) *Context {
	return &Context{
		B:         b,
		axioms:    b.Bool(true),
		inputs:    make(map[int]Value),
		initReads: make(map[memEpochKey][]memWitness),
		freeze:    make(map[string]*smt.Term),
		callRets:  make(map[string]*smt.Term),
	}
}

// Axioms returns the conjunction of consistency constraints accumulated so
// far; the refinement query must conjoin them.
func (c *Context) Axioms() *smt.Term { return c.axioms }

func (c *Context) addAxiom(t *smt.Term) {
	c.axioms = c.B.And(c.axioms, t)
}

// Input returns the shared symbolic value for parameter index i. The
// poison flag is a free variable unless the parameter is marked noundef
// (then it is constrained to zero); nonnull pointer parameters are
// constrained away from address 0.
func (c *Context) Input(i int, p *ir.Param) Value {
	if v, ok := c.inputs[i]; ok {
		return v
	}
	var v Value
	name := fmt.Sprintf("in!%d!%s", i, p.Nm)
	switch {
	case ir.IsPtr(p.Ty):
		v = Value{
			Bits:   c.B.Var(PtrBits, name),
			Poison: c.B.Var(1, name+"!poison"),
			Prov:   ProvExternal,
		}
		if p.Attrs.Nonnull {
			c.addAxiom(c.B.Ne(v.Bits, c.B.Const(PtrBits, 0)))
		}
	default:
		w, ok := ir.IsInt(p.Ty)
		if !ok {
			panic("semantics: unsupported parameter type " + p.Ty.String())
		}
		v = Value{
			Bits:   c.B.Var(w, name),
			Poison: c.B.Var(1, name+"!poison"),
			Prov:   ProvNone,
		}
	}
	if p.Attrs.Noundef {
		c.addAxiom(c.B.Not(v.Poison))
	}
	c.inputs[i] = v
	return v
}

// InitByte reads a byte of the initial (or post-havoc) memory of the given
// provenance and epoch at a symbolic address, Ackermann-style: each
// distinct read site gets a fresh variable plus pairwise consistency
// axioms (equal addresses → equal values). Witness tables are shared
// between source and target, so both sides observe the same initial
// memory.
func (c *Context) InitByte(prov, epoch int, addr *smt.Term) Byte {
	key := memEpochKey{prov, epoch}
	for _, w := range c.initReads[key] {
		if w.addr == addr { // hash-consed: pointer equality is term equality
			return Byte{Bits: w.val, Poison: c.B.Bool(false)}
		}
	}
	c.nextAux++
	v := c.B.Var(8, fmt.Sprintf("mem!%d!%d!%d", prov, epoch, c.nextAux))
	for _, w := range c.initReads[key] {
		c.addAxiom(c.B.Implies(c.B.Eq(addr, w.addr), c.B.Eq(v, w.val)))
	}
	c.initReads[key] = append(c.initReads[key], memWitness{addr: addr, val: v})
	return Byte{Bits: v, Poison: c.B.Bool(false)}
}

// FreezeVar returns the shared nondeterministic replacement value for a
// freeze instruction, keyed by the instruction's SSA name so that a freeze
// surviving optimization resolves to the same choice on both sides.
func (c *Context) FreezeVar(name string, w int) *smt.Term {
	key := fmt.Sprintf("freeze!%s!%d", name, w)
	if t, ok := c.freeze[key]; ok {
		return t
	}
	t := c.B.Var(w, key)
	c.freeze[key] = t
	return t
}

// CallRet returns the shared return-value variable for the idx'th call on
// a path to the given callee.
func (c *Context) CallRet(idx int, callee string, w int) *smt.Term {
	key := fmt.Sprintf("call!%d!%s!%d", idx, callee, w)
	if t, ok := c.callRets[key]; ok {
		return t
	}
	t := c.B.Var(w, key)
	c.callRets[key] = t
	return t
}

// ProbeVar returns a fresh free address variable used by the validator to
// universally test memory equality (a free variable under a satisfiability
// query quantifies adversarially, which is exactly ∀ for the refinement's
// negation).
func (c *Context) ProbeVar(tag string) *smt.Term {
	c.nextAux++
	return c.B.Var(PtrBits, fmt.Sprintf("probe!%s!%d", tag, c.nextAux))
}
