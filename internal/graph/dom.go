// Package graph implements generic control-flow-graph algorithms over
// integer-numbered nodes. It has no dependencies on the IR packages, so
// both internal/ir (the verifier) and internal/analysis (the cached
// per-function analyses) can share one dominator implementation instead
// of carrying diverging copies.
package graph

// DomTree is a dominator tree over nodes 0..N-1, built with the
// Cooper–Harvey–Kennedy iterative algorithm over a reverse-postorder
// numbering and annotated with DFS intervals for O(1) dominance queries.
type DomTree struct {
	n     int
	entry int
	idom  []int // immediate dominator per node; -1 for entry/unreachable
	reach []bool
	in    []int
	out   []int
}

// Dominators computes the dominator tree of the graph with n nodes whose
// edges are given by succs, rooted at entry. Nodes unreachable from the
// entry are recorded as such; they dominate nothing and are dominated by
// nothing.
func Dominators(n, entry int, succs func(int) []int) *DomTree {
	t := &DomTree{
		n:     n,
		entry: entry,
		idom:  make([]int, n),
		reach: make([]bool, n),
		in:    make([]int, n),
		out:   make([]int, n),
	}
	for i := range t.idom {
		t.idom[i] = -1
	}
	if n == 0 {
		return t
	}

	// Postorder DFS over the CFG (iterative to handle deep graphs).
	post := make([]int, 0, n)
	t.reach[entry] = true
	type frame struct {
		node int
		next int
	}
	stack := []frame{{entry, 0}}
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		ss := succs(fr.node)
		advanced := false
		for fr.next < len(ss) {
			s := ss[fr.next]
			fr.next++
			if !t.reach[s] {
				t.reach[s] = true
				stack = append(stack, frame{s, 0})
				advanced = true
				break
			}
		}
		if !advanced && fr.next >= len(ss) {
			post = append(post, fr.node)
			stack = stack[:len(stack)-1]
		}
	}

	rpo := make([]int, len(post))
	num := make([]int, n)
	for i := range num {
		num[i] = -1
	}
	for i := range post {
		rpo[len(post)-1-i] = post[i]
	}
	for i, b := range rpo {
		num[b] = i
	}

	preds := make([][]int, n)
	for b := 0; b < n; b++ {
		for _, s := range succs(b) {
			preds[s] = append(preds[s], b)
		}
	}

	idom := t.idom
	idom[entry] = entry
	intersect := func(a, b int) int {
		for a != b {
			for num[a] > num[b] {
				a = idom[a]
			}
			for num[b] > num[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range rpo[1:] {
			newIdom := -1
			for _, p := range preds[b] {
				if !t.reach[p] || idom[p] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != -1 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	idom[entry] = -1

	// DFS over the dominator tree to assign intervals.
	children := make([][]int, n)
	for _, b := range rpo[1:] {
		children[idom[b]] = append(children[idom[b]], b)
	}
	clock := 0
	var number func(int)
	number = func(b int) {
		clock++
		t.in[b] = clock
		for _, c := range children[b] {
			number(c)
		}
		clock++
		t.out[b] = clock
	}
	number(entry)
	return t
}

// IDom returns the immediate dominator of b, or -1 for the entry node and
// for unreachable nodes.
func (t *DomTree) IDom(b int) int { return t.idom[b] }

// Reachable reports whether b is reachable from the entry.
func (t *DomTree) Reachable(b int) bool { return t.reach[b] }

// Dominates reports whether a dominates b (reflexively: every reachable
// node dominates itself). Unreachable nodes neither dominate nor are
// dominated.
func (t *DomTree) Dominates(a, b int) bool {
	if !t.reach[a] || !t.reach[b] {
		return false
	}
	return t.in[a] <= t.in[b] && t.out[b] <= t.out[a]
}

// StrictlyDominates reports a dominates b and a != b.
func (t *DomTree) StrictlyDominates(a, b int) bool {
	return a != b && t.Dominates(a, b)
}
