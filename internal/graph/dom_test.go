package graph

import "testing"

// adj builds a succs function from an adjacency list.
func adj(edges [][]int) func(int) []int {
	return func(i int) []int { return edges[i] }
}

func TestDiamond(t *testing.T) {
	// 0 -> 1, 2 ; 1 -> 3 ; 2 -> 3
	d := Dominators(4, 0, adj([][]int{{1, 2}, {3}, {3}, {}}))
	for b, want := range []int{-1, 0, 0, 0} {
		if got := d.IDom(b); got != want {
			t.Errorf("idom(%d) = %d, want %d", b, got, want)
		}
	}
	if !d.Dominates(0, 3) || d.Dominates(1, 3) || d.Dominates(2, 3) {
		t.Error("diamond dominance wrong")
	}
	if !d.Dominates(3, 3) {
		t.Error("dominance must be reflexive")
	}
	if d.StrictlyDominates(3, 3) {
		t.Error("strict dominance must be irreflexive")
	}
}

func TestLoop(t *testing.T) {
	// 0 -> 1 ; 1 -> 2 ; 2 -> 1, 3
	d := Dominators(4, 0, adj([][]int{{1}, {2}, {1, 3}, {}}))
	for b, want := range []int{-1, 0, 1, 2} {
		if got := d.IDom(b); got != want {
			t.Errorf("idom(%d) = %d, want %d", b, got, want)
		}
	}
	if !d.Dominates(1, 3) {
		t.Error("loop header must dominate exit")
	}
}

func TestUnreachable(t *testing.T) {
	// node 2 has no in-edges from the entry component.
	d := Dominators(3, 0, adj([][]int{{1}, {}, {1}}))
	if d.Reachable(2) {
		t.Error("node 2 must be unreachable")
	}
	if d.Dominates(2, 1) || d.Dominates(0, 2) || d.Dominates(2, 2) {
		t.Error("unreachable nodes must not participate in dominance")
	}
	if d.IDom(2) != -1 {
		t.Error("unreachable node must have no idom")
	}
}

func TestDeepChainNoOverflow(t *testing.T) {
	// A 50k-node chain must not blow the stack (iterative DFS).
	const n = 50000
	succ := func(i int) []int {
		if i+1 < n {
			return []int{i + 1}
		}
		return nil
	}
	d := Dominators(n, 0, succ)
	if !d.Dominates(0, n-1) || d.IDom(n-1) != n-2 {
		t.Fatal("chain dominance wrong")
	}
}

func TestSingleNode(t *testing.T) {
	d := Dominators(1, 0, adj([][]int{{}}))
	if !d.Dominates(0, 0) || d.IDom(0) != -1 || !d.Reachable(0) {
		t.Error("single-node graph wrong")
	}
}
