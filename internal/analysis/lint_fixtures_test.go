package analysis

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/parser"
)

// TestLintSeededFixtures checks that each seeded fixture under
// testdata/lint triggers exactly the rules planted in it.
func TestLintSeededFixtures(t *testing.T) {
	expect := map[string][]LintRule{
		"dead_param.ll":            {RuleDeadParam},
		"always_poison.ll":         {RuleAlwaysPoison},
		"undef_use.ll":             {RuleUndefUse},
		"unreachable_and_flags.ll": {RuleUnreachable, RuleRedundantFlag},
		"misaligned.ll":            {RuleMisalignedMem},
		"guaranteed_ub.ll":         {RuleGuaranteedUB},
		"dead_flag.ll":             {RuleDeadFlag},
	}
	flagged := 0
	for name, rules := range expect {
		src, err := os.ReadFile(filepath.Join("testdata", "lint", name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		diags := Lint(parser.MustParse(string(src)), LintConfig{})
		if len(diags) == 0 {
			t.Errorf("%s: no diagnostics, want %v", name, rules)
			continue
		}
		flagged++
		for _, r := range rules {
			if !hasRule(diags, r) {
				t.Errorf("%s: missing %s in %v", name, r, diags)
			}
		}
	}
	if flagged < 3 {
		t.Fatalf("only %d fixtures flagged, want >= 3", flagged)
	}
}

// TestLintExamplesClean: the shipped example IR must produce zero
// diagnostics (the same invariant `ir-lint examples/ir` enforces).
func TestLintExamplesClean(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "ir")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("examples/ir: %v", err)
	}
	checked := 0
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".ll" {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if diags := Lint(parser.MustParse(string(src)), LintConfig{}); len(diags) != 0 {
			t.Errorf("examples/ir/%s: unexpected findings: %v", e.Name(), diags)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no .ll examples found")
	}
}
