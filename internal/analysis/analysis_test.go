package analysis

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/parser"
)

const diamond = `define i32 @f(i1 %c, i32 %x) {
entry:
  %e0 = add i32 %x, 1
  br i1 %c, label %a, label %b
a:
  %va = add i32 %e0, 2
  br label %join
b:
  %vb = mul i32 %e0, 3
  br label %join
join:
  %r = phi i32 [ %va, %a ], [ %vb, %b ]
  ret i32 %r
}`

func blocks(f *ir.Function) map[string]*ir.Block {
	m := make(map[string]*ir.Block)
	for _, b := range f.Blocks {
		m[b.Nm] = b
	}
	return m
}

func TestDomTreeDiamond(t *testing.T) {
	f := parser.MustParse(diamond).FuncByName("f")
	dom := BuildDomTree(f)
	bs := blocks(f)

	if dom.IDom(bs["entry"]) != nil {
		t.Error("entry has an idom")
	}
	for _, name := range []string{"a", "b", "join"} {
		if dom.IDom(bs[name]) != bs["entry"] {
			t.Errorf("idom(%s) = %v, want entry", name, dom.IDom(bs[name]))
		}
	}
	if !dom.Dominates(bs["entry"], bs["join"]) {
		t.Error("entry must dominate join")
	}
	if dom.Dominates(bs["a"], bs["join"]) {
		t.Error("a must not dominate join")
	}
	if !dom.Dominates(bs["a"], bs["a"]) {
		t.Error("dominance must be reflexive")
	}
	if dom.StrictlyDominates(bs["a"], bs["a"]) {
		t.Error("strict dominance must be irreflexive")
	}
}

func TestDomTreeUnreachable(t *testing.T) {
	f := parser.MustParse(`define void @f() {
entry:
  ret void
dead:
  ret void
}`).FuncByName("f")
	dom := BuildDomTree(f)
	bs := blocks(f)
	if dom.Reachable(bs["dead"]) {
		t.Error("dead block reported reachable")
	}
	if dom.Dominates(bs["entry"], bs["dead"]) || dom.Dominates(bs["dead"], bs["entry"]) {
		t.Error("unreachable blocks participate in dominance")
	}
}

func TestDomTreeLoop(t *testing.T) {
	f := parser.MustParse(`define i32 @f(i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %ni, %body ]
  %c = icmp ult i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %ni = add i32 %i, 1
  br label %head
exit:
  ret i32 %i
}`).FuncByName("f")
	dom := BuildDomTree(f)
	bs := blocks(f)
	if dom.IDom(bs["head"]) != bs["entry"] ||
		dom.IDom(bs["body"]) != bs["head"] ||
		dom.IDom(bs["exit"]) != bs["head"] {
		t.Error("loop dominator tree wrong")
	}
}

func TestShuffleRanges(t *testing.T) {
	// @test9 shape: the two loads and the call are ordering-relevant, so
	// only independent pure instructions form ranges.
	f := parser.MustParse(`define i32 @f(i32 %x, i32 %y) {
  %a = add i32 %x, 1
  %b = mul i32 %y, 2
  %c = xor i32 %x, %y
  %d = add i32 %a, %b
  ret i32 %d
}`).FuncByName("f")
	ranges := ComputeShuffleRanges(f.Entry())
	// %a, %b, %c are mutually independent; %d depends on %a → range is
	// [0,3).
	if len(ranges) != 1 || ranges[0].Start != 0 || ranges[0].End != 3 {
		t.Fatalf("ranges = %+v, want one [0,3)", ranges)
	}
}

func TestShuffleRangesRespectMemory(t *testing.T) {
	f := parser.MustParse(`define i32 @f(ptr %p) {
  %a = load i32, ptr %p
  %b = load i32, ptr %p
  %c = add i32 %a, %b
  ret i32 %c
}`).FuncByName("f")
	for _, r := range ComputeShuffleRanges(f.Entry()) {
		for i := r.Start; i < r.End; i++ {
			if f.Entry().Instrs[i].Op == ir.OpLoad {
				t.Fatal("loads must not be shufflable")
			}
		}
	}
}

func TestConstScan(t *testing.T) {
	f := parser.MustParse(`define i32 @f(i32 %x) {
  %a = add i32 %x, 10
  %b = mul i32 %a, 20
  %c = icmp ult i32 %b, 30
  %r = select i1 %c, i32 %a, i32 %b
  ret i32 %r
}`).FuncByName("f")
	sites := ScanConstants(f)
	if len(sites) != 3 {
		t.Fatalf("found %d constant sites, want 3", len(sites))
	}
}

func TestOverlayDominatingValues(t *testing.T) {
	mod := parser.MustParse(diamond)
	f := mod.FuncByName("f")
	info := Preprocess(f)
	clone := f.Clone()
	ov := NewOverlay(info, clone)

	bs := blocks(clone)
	join := bs["join"]
	// At the ret (index 1, after the phi), i32 candidates: %x, %e0, %r
	// (in join), plus nothing from a/b (they don't dominate join).
	vals := ov.DominatingValues(join, 1, ir.I32)
	names := map[string]bool{}
	for _, v := range vals {
		switch x := v.(type) {
		case *ir.Param:
			names[x.Nm] = true
		case *ir.Instr:
			names[x.Nm] = true
		}
	}
	for _, want := range []string{"x", "e0", "r"} {
		if !names[want] {
			t.Errorf("missing dominating value %%%s (got %v)", want, names)
		}
	}
	for _, bad := range []string{"va", "vb", "c"} {
		if names[bad] {
			t.Errorf("non-dominating/wrong-type value %%%s offered", bad)
		}
	}
}

func TestOverlayValueDominatesPoint(t *testing.T) {
	mod := parser.MustParse(diamond)
	f := mod.FuncByName("f")
	info := Preprocess(f)
	clone := f.Clone()
	ov := NewOverlay(info, clone)
	bs := blocks(clone)

	e0 := bs["entry"].Instrs[0]
	va := bs["a"].Instrs[0]

	if !ov.ValueDominatesPoint(e0, bs["a"], 0) {
		t.Error("e0 must dominate the top of a")
	}
	if ov.ValueDominatesPoint(va, bs["b"], 0) {
		t.Error("va must not dominate b")
	}
	if ov.ValueDominatesPoint(e0, bs["entry"], 0) {
		t.Error("a definition does not dominate its own position")
	}
	if !ov.ValueDominatesPoint(e0, bs["entry"], 1) {
		t.Error("a definition dominates the point just after it")
	}
	// Constants and params dominate everywhere.
	if !ov.ValueDominatesPoint(clone.Params[0], bs["b"], 0) {
		t.Error("param must dominate everywhere")
	}
}

func TestOverlayCacheInvalidation(t *testing.T) {
	mod := parser.MustParse(`define i32 @f(i32 %x) {
  %a = add i32 %x, 1
  %b = add i32 %x, 2
  %c = add i32 %a, %b
  ret i32 %c
}`)
	f := mod.FuncByName("f")
	info := Preprocess(f)
	clone := f.Clone()
	ov := NewOverlay(info, clone)

	r1 := ov.ShuffleRanges()
	if len(r1) != 1 {
		t.Fatalf("ranges = %v", r1)
	}
	c1 := ov.ConstSites()
	if len(c1) != 2 {
		t.Fatalf("const sites = %d, want 2", len(c1))
	}

	// Structural edit: drop %c's dependence so the range grows.
	clone.Entry().Instrs[2].Args[0] = clone.Params[0]
	clone.Entry().Instrs[2].Args[1] = ir.NewConst(ir.I32, 9)
	ov.Invalidate()
	r2 := ov.ShuffleRanges()
	if len(r2) != 1 || r2[0].Len() != 3 {
		t.Fatalf("after invalidation ranges = %+v, want one of length 3", r2)
	}
	c2 := ov.ConstSites()
	if len(c2) != 3 {
		t.Fatalf("after invalidation const sites = %d, want 3", len(c2))
	}
}

func TestOverlayMismatchPanics(t *testing.T) {
	mod := parser.MustParse(diamond)
	f := mod.FuncByName("f")
	info := Preprocess(f)
	other := parser.MustParse(`define void @g() {
  ret void
}`).FuncByName("g")
	defer func() {
		if recover() == nil {
			t.Error("overlay over mismatched block structure must panic")
		}
	}()
	NewOverlay(info, other)
}
