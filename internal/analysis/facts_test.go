package analysis

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/parser"
)

func instrByName(t *testing.T, f *ir.Function, name string) *ir.Instr {
	t.Helper()
	for _, in := range f.Instrs() {
		if in.Nm == name {
			return in
		}
	}
	t.Fatalf("no instruction %%%s in @%s", name, f.Name)
	return nil
}

func TestFactsKnownThroughIR(t *testing.T) {
	f := parser.MustParse(`define i8 @f(i8 %x) {
  %lo = and i8 %x, 15
  %hi = shl i8 %lo, 4
  %or = or i8 %hi, 3
  %z = zext i8 %or to i16
  ret i8 %or
}
`).FuncByName("f")
	fa := NewFacts(f)

	lo := fa.Known(instrByName(t, f, "lo"))
	if lo.Zeros != 0xF0 {
		t.Errorf("and x,15: zeros = %#x, want 0xF0", lo.Zeros)
	}
	hi := fa.Known(instrByName(t, f, "hi"))
	if hi.Zeros != 0x0F {
		t.Errorf("shl 4: zeros = %#x, want 0x0F", hi.Zeros)
	}
	or := fa.Known(instrByName(t, f, "or"))
	if or.Ones != 0x03 || or.Zeros != 0x0C {
		t.Errorf("or 3: got %v, want ones 0x03 zeros 0x0C", or)
	}
}

func TestFactsICmpDecidedByKnownBits(t *testing.T) {
	// %a has bit 0 set, %b has bit 0 clear: eq is provably false even
	// though their ranges overlap.
	f := parser.MustParse(`define i1 @f(i8 %x, i8 %y) {
  %a = or i8 %x, 1
  %b = and i8 %y, 254
  %c = icmp eq i8 %a, %b
  %d = icmp ne i8 %a, %b
  ret i1 %c
}
`).FuncByName("f")
	fa := NewFacts(f)
	if k := fa.Known(instrByName(t, f, "c")); !k.IsConst() || k.Const() != 0 {
		t.Errorf("icmp eq with conflicting known bits: got %v, want const 0", k)
	}
	if k := fa.Known(instrByName(t, f, "d")); !k.IsConst() || k.Const() != 1 {
		t.Errorf("icmp ne with conflicting known bits: got %v, want const 1", k)
	}
}

func TestFactsRangeThroughIR(t *testing.T) {
	f := parser.MustParse(`define i16 @f(i8 %x) {
  %z = zext i8 %x to i16
  %a = add i16 %z, 10
  %m = mul i16 %z, 2
  %r = urem i16 %a, 100
  ret i16 %r
}
`).FuncByName("f")
	fa := NewFacts(f)

	z := fa.RangeOf(instrByName(t, f, "z"), nil)
	if z.ULo != 0 || z.UHi != 255 || z.SLo != 0 || z.SHi != 255 {
		t.Errorf("zext i8: range %v, want u[0,255] s[0,255]", z)
	}
	a := fa.RangeOf(instrByName(t, f, "a"), nil)
	if a.ULo != 10 || a.UHi != 265 {
		t.Errorf("zext+10: range %v, want u[10,265]", a)
	}
	m := fa.RangeOf(instrByName(t, f, "m"), nil)
	if m.ULo != 0 || m.UHi != 510 {
		t.Errorf("zext*2: range %v, want u[0,510]", m)
	}
	r := fa.RangeOf(instrByName(t, f, "r"), nil)
	if r.UHi != 99 {
		t.Errorf("urem 100: range %v, want UHi 99", r)
	}
}

func TestFactsGuardedEdgeRefinement(t *testing.T) {
	f := parser.MustParse(`define i8 @f(i8 %x) {
entry:
  %c = icmp ult i8 %x, 10
  br i1 %c, label %small, label %big
small:
  %a = add i8 %x, 1
  ret i8 %a
big:
  %b = sub i8 %x, 10
  ret i8 %b
}
`).FuncByName("f")
	fa := NewFacts(f)
	x := f.Params[0]
	small := f.BlockByName("small")
	big := f.BlockByName("big")

	if got := fa.RangeOf(x, small); got.UHi != 9 {
		t.Errorf("in %%small, x range %v, want UHi 9", got)
	}
	if got := fa.RangeOf(x, big); got.ULo != 10 {
		t.Errorf("in %%big, x range %v, want ULo 10", got)
	}
	if got := fa.RangeOf(x, nil); got.ULo != 0 || got.UHi != 255 {
		t.Errorf("context-free x range %v, want full", got)
	}
	// The guard flows through a dominated add: in %small, x+1 is in
	// [1,10].
	if got := fa.RangeOf(instrByName(t, f, "a"), small); got.UHi > 10 {
		// Note: computeRange uses context-free operand ranges; only the
		// direct guarded value is refined. This documents that contract.
		t.Logf("a range in small: %v (operand refinement not propagated)", got)
	}
}

func TestFactsAssumeRefinement(t *testing.T) {
	f := parser.MustParse(`define i8 @f(i8 %x) {
entry:
  %c = icmp ugt i8 %x, 100
  call void @llvm.assume(i1 %c)
  %r = add i8 %x, 0
  ret i8 %r
}
`).FuncByName("f")
	fa := NewFacts(f)
	x := f.Params[0]
	if got := fa.RangeOf(x, f.Entry()); got.ULo != 101 {
		t.Errorf("after assume ugt 100: range %v, want ULo 101", got)
	}
}

func TestFactsGuardConstOnLeft(t *testing.T) {
	// icmp ugt 10, %x means x < 10; the guard must swap the predicate.
	f := parser.MustParse(`define i8 @f(i8 %x) {
entry:
  %c = icmp ugt i8 10, %x
  br i1 %c, label %a, label %b
a:
  ret i8 %x
b:
  ret i8 0
}
`).FuncByName("f")
	fa := NewFacts(f)
	x := f.Params[0]
	if got := fa.RangeOf(x, f.BlockByName("a")); got.UHi != 9 {
		t.Errorf("taken edge of (10 ugt x): range %v, want UHi 9", got)
	}
	if got := fa.RangeOf(x, f.BlockByName("b")); got.ULo != 10 {
		t.Errorf("untaken edge of (10 ugt x): range %v, want ULo 10", got)
	}
}

func TestFactsLoopPhiIsCycleSafe(t *testing.T) {
	f := parser.MustParse(`define i8 @f(i8 %n) {
entry:
  br label %loop
loop:
  %i = phi i8 [ 0, %entry ], [ %next, %loop ]
  %next = add i8 %i, 1
  %c = icmp ult i8 %next, %n
  br i1 %c, label %loop, label %done
done:
  ret i8 %i
}
`).FuncByName("f")
	fa := NewFacts(f)
	// Must terminate and produce a sound (possibly full) fact.
	i := instrByName(t, f, "i")
	k := fa.Known(i)
	r := fa.RangeOf(i, nil)
	if k.Zeros&k.Ones != 0 {
		t.Errorf("loop phi known bits inconsistent: %v", k)
	}
	if r.ULo > r.UHi || r.SLo > r.SHi {
		t.Errorf("loop phi range malformed: %v", r)
	}
}

func TestFactsInvalidate(t *testing.T) {
	f := parser.MustParse(`define i8 @f(i8 %x) {
  %a = and i8 %x, 15
  ret i8 %a
}
`).FuncByName("f")
	fa := NewFacts(f)
	a := instrByName(t, f, "a")
	if k := fa.Known(a); k.Zeros != 0xF0 {
		t.Fatalf("and 15: zeros %#x, want 0xF0", k.Zeros)
	}
	// Mutate: widen the mask. Without Invalidate the stale fact stays.
	a.Args[1] = ir.NewConst(ir.I8, 255)
	fa.Invalidate()
	if k := fa.Known(a); k.Zeros != 0 {
		t.Errorf("after mutation+invalidate: zeros %#x, want 0", k.Zeros)
	}
}

func TestFactsDemanded(t *testing.T) {
	f := parser.MustParse(`define i8 @f(i8 %x, i8 %y) {
  %a = add i8 %x, %y
  %lo = and i8 %a, 15
  ret i8 %lo
}
`).FuncByName("f")
	fa := NewFacts(f)
	a := instrByName(t, f, "a")
	// Only the low nibble of %a feeds the return; add spreads demand
	// downward but not upward.
	if got := fa.Demanded(a); got != 0x0F {
		t.Errorf("demanded(%%a) = %#x, want 0x0F", got)
	}
	// %lo feeds ret, which demands everything.
	if got := fa.Demanded(instrByName(t, f, "lo")); got != 0xFF {
		t.Errorf("demanded(%%lo) = %#x, want 0xFF", got)
	}
}

func TestFactsDemandedThroughShift(t *testing.T) {
	f := parser.MustParse(`define i8 @f(i8 %x) {
  %s = lshr i8 %x, 4
  %m = and i8 %s, 3
  ret i8 %m
}
`).FuncByName("f")
	fa := NewFacts(f)
	// ret demands all of %m; %m demands bits 0-1 of %s; %s = x >> 4, so
	// bits 4-5 of %x are demanded... but %x is a param, so check %s.
	if got := fa.Demanded(instrByName(t, f, "s")); got != 0x03 {
		t.Errorf("demanded(%%s) = %#x, want 0x03", got)
	}
}

func TestFactsDemandedFlagForcesAll(t *testing.T) {
	f := parser.MustParse(`define i8 @f(i8 %x, i8 %y) {
  %a = add i8 %x, %y
  %b = add nuw i8 %a, 1
  %lo = and i8 %b, 1
  ret i8 %lo
}
`).FuncByName("f")
	fa := NewFacts(f)
	// %b carries nuw: its operand %a can affect poison-ness through any
	// bit, so everything is demanded.
	if got := fa.Demanded(instrByName(t, f, "a")); got != 0xFF {
		t.Errorf("demanded(%%a) under nuw user = %#x, want 0xFF", got)
	}
}

func TestFactsDeadInstrDemandsNothing(t *testing.T) {
	f := parser.MustParse(`define i8 @f(i8 %x) {
  %dead = add i8 %x, 1
  ret i8 %x
}
`).FuncByName("f")
	fa := NewFacts(f)
	if got := fa.Demanded(instrByName(t, f, "dead")); got != 0 {
		t.Errorf("demanded(dead) = %#x, want 0", got)
	}
}

func TestFactsSelectAndIntrinsics(t *testing.T) {
	f := parser.MustParse(`define i8 @f(i1 %c, i8 %x) {
  %lo = and i8 %x, 7
  %s = select i1 %c, i8 %lo, i8 3
  %m = call i8 @llvm.umin.i8(i8 %x, i8 20)
  %p = call i8 @llvm.ctpop.i8(i8 %x)
  ret i8 %s
}
`).FuncByName("f")
	fa := NewFacts(f)
	if k := fa.Known(instrByName(t, f, "s")); k.Zeros != 0xF8 {
		t.Errorf("select of two low-3-bit values: zeros %#x, want 0xF8", k.Zeros)
	}
	if r := fa.RangeOf(instrByName(t, f, "m"), nil); r.UHi != 20 {
		t.Errorf("umin 20: range %v, want UHi 20", r)
	}
	if r := fa.RangeOf(instrByName(t, f, "p"), nil); r.UHi != 8 {
		t.Errorf("ctpop i8: range %v, want UHi 8", r)
	}
}
