package analysis

import (
	"testing"

	"repro/internal/apint"
	"repro/internal/rng"
)

// enumPatterns yields every (Zeros, Ones) partition at width w — each bit
// is known-0, known-1, or unknown, so 3^w patterns.
func enumPatterns(w int) []KnownBits {
	var out []KnownBits
	var rec func(bit int, zeros, ones uint64)
	rec = func(bit int, zeros, ones uint64) {
		if bit == w {
			out = append(out, KnownBits{Width: w, Zeros: zeros, Ones: ones})
			return
		}
		rec(bit+1, zeros, ones)
		rec(bit+1, zeros|1<<uint(bit), ones)
		rec(bit+1, zeros, ones|1<<uint(bit))
	}
	rec(0, 0, 0)
	return out
}

// consistentValues lists every concrete value a pattern allows.
func consistentValues(k KnownBits) []uint64 {
	free := ^(k.Zeros | k.Ones) & apint.Mask(k.Width)
	var out []uint64
	// Iterate subsets of the free mask.
	sub := uint64(0)
	for {
		out = append(out, k.Ones|sub)
		if sub == free {
			return out
		}
		sub = (sub - free) & free
	}
}

// kbBinCase describes one binary transfer function and its concrete
// semantics; ok=false marks executions whose result is poison or UB
// (claims are vacuous there).
type kbBinCase struct {
	name  string
	apply func(a, b KnownBits) KnownBits
	eval  func(a, b uint64, w int) (uint64, bool)
}

func kbBinCases() []kbBinCase {
	return []kbBinCase{
		{"and", KnownBits.And, func(a, b uint64, w int) (uint64, bool) { return a & b, true }},
		{"or", KnownBits.Or, func(a, b uint64, w int) (uint64, bool) { return a | b, true }},
		{"xor", KnownBits.Xor, func(a, b uint64, w int) (uint64, bool) { return a ^ b, true }},
		{"add", KnownBits.Add, func(a, b uint64, w int) (uint64, bool) { return apint.Add(a, b, w), true }},
		{"sub", KnownBits.Sub, func(a, b uint64, w int) (uint64, bool) { return apint.Sub(a, b, w), true }},
		{"mul", KnownBits.Mul, func(a, b uint64, w int) (uint64, bool) { return apint.Mul(a, b, w), true }},
		{"udiv", KnownBits.UDiv, func(a, b uint64, w int) (uint64, bool) {
			if b == 0 {
				return 0, false // UB
			}
			return apint.UDiv(a, b, w), true
		}},
		{"urem", KnownBits.URem, func(a, b uint64, w int) (uint64, bool) {
			if b == 0 {
				return 0, false
			}
			return apint.URem(a, b, w), true
		}},
		// Union is the transfer for any pick-one-operand op.
		{"smax", KnownBits.Union, func(a, b uint64, w int) (uint64, bool) { return apint.SMax(a, b, w), true }},
		{"umin", KnownBits.Union, func(a, b uint64, w int) (uint64, bool) { return apint.UMin(a, b), true }},
	}
}

// TestKnownBitsBinaryExhaustive checks every binary transfer against
// every concrete execution of every knowledge pattern at width 3.
func TestKnownBitsBinaryExhaustive(t *testing.T) {
	const w = 3
	pats := enumPatterns(w)
	for _, tc := range kbBinCases() {
		t.Run(tc.name, func(t *testing.T) {
			for _, ka := range pats {
				for _, kb := range pats {
					out := tc.apply(ka, kb)
					if out.Zeros&out.Ones != 0 {
						t.Fatalf("%s(%v, %v) = %v has conflicting masks", tc.name, ka, kb, out)
					}
					for _, va := range consistentValues(ka) {
						for _, vb := range consistentValues(kb) {
							res, ok := tc.eval(va, vb, w)
							if !ok {
								continue
							}
							if !out.Consistent(res) {
								t.Fatalf("%s: a=%#x (%v) b=%#x (%v) -> %#x violates %v",
									tc.name, va, ka, vb, kb, res, out)
							}
						}
					}
				}
			}
		})
	}
}

// TestKnownBitsShiftsExhaustive checks the known-constant-amount shift
// transfers for every amount and pattern at width 4.
func TestKnownBitsShiftsExhaustive(t *testing.T) {
	const w = 4
	pats := enumPatterns(w)
	for c := 0; c < w; c++ {
		for _, ka := range pats {
			shl := ka.ShlConst(c)
			lshr := ka.LShrConst(c)
			ashr := ka.AShrConst(c)
			for _, va := range consistentValues(ka) {
				if got := apint.Shl(va, uint64(c), w); !shl.Consistent(got) {
					t.Fatalf("shl %#x,%d -> %#x violates %v (in %v)", va, c, got, shl, ka)
				}
				if got := apint.LShr(va, uint64(c), w); !lshr.Consistent(got) {
					t.Fatalf("lshr %#x,%d -> %#x violates %v (in %v)", va, c, got, lshr, ka)
				}
				if got := apint.AShr(va, uint64(c), w); !ashr.Consistent(got) {
					t.Fatalf("ashr %#x,%d -> %#x violates %v (in %v)", va, c, got, ashr, ka)
				}
			}
		}
	}
}

// TestKnownBitsCastsExhaustive checks trunc/zext/sext at width 4 -> 2/7.
func TestKnownBitsCastsExhaustive(t *testing.T) {
	const w = 4
	for _, ka := range enumPatterns(w) {
		tr := ka.TruncTo(2)
		ze := ka.ZExtTo(7)
		se := ka.SExtTo(7)
		for _, va := range consistentValues(ka) {
			if got := apint.Trunc(va, 2); !tr.Consistent(got) {
				t.Fatalf("trunc %#x violates %v", va, tr)
			}
			if got := apint.ZExt(va, w, 7); !ze.Consistent(got) {
				t.Fatalf("zext %#x violates %v", va, ze)
			}
			if got := apint.SExt(va, w, 7); !se.Consistent(got) {
				t.Fatalf("sext %#x violates %v", va, se)
			}
		}
	}
}

// randPattern builds a random consistent pattern and a sample of values
// it allows.
func randPattern(r *rng.Rand, w int) (KnownBits, []uint64) {
	m := apint.Mask(w)
	known := r.Uint64() & m
	val := r.Uint64() & m
	k := KnownBits{Width: w, Zeros: known & ^val & m, Ones: known & val}
	vals := make([]uint64, 0, 8)
	free := ^known & m
	for i := 0; i < 8; i++ {
		vals = append(vals, k.Ones|(r.Uint64()&free))
	}
	return k, vals
}

// TestKnownBitsWide runs randomized spot checks at widths 8, 33, 64 —
// catching width-edge bugs the exhaustive small-width sweep cannot.
func TestKnownBitsWide(t *testing.T) {
	r := rng.New(0x6b62)
	for _, w := range []int{8, 33, 64} {
		for iter := 0; iter < 2000; iter++ {
			ka, vas := randPattern(r, w)
			kb, vbs := randPattern(r, w)
			for _, tc := range kbBinCases() {
				out := tc.apply(ka, kb)
				for _, va := range vas {
					for _, vb := range vbs {
						res, ok := tc.eval(va, vb, w)
						if !ok {
							continue
						}
						if !out.Consistent(res) {
							t.Fatalf("w=%d %s: a=%#x b=%#x -> %#x violates %v", w, tc.name, va, vb, res, out)
						}
					}
				}
			}
		}
	}
}

func TestKnownBitsExactCases(t *testing.T) {
	// A few pinned expectations so precision regressions (not just
	// soundness bugs) are caught.
	c5 := FromConst(8, 5)
	c3 := FromConst(8, 3)
	if got := c5.Add(c3); !got.IsConst() || got.Const() != 8 {
		t.Errorf("5+3 = %v, want const 8", got)
	}
	// and x, 0xF0 has low nibble known zero.
	x := Unknown(8)
	if got := x.And(FromConst(8, 0xF0)); got.Zeros != 0x0F {
		t.Errorf("and x, 0xF0: zeros = %#x, want 0x0F", got.Zeros)
	}
	// zext i8 -> i16 pins the high byte.
	if got := x.ZExtTo(16); got.Zeros != 0xFF00 {
		t.Errorf("zext: zeros = %#x, want 0xFF00", got.Zeros)
	}
	// shl by 3 pins three trailing zeros.
	if got := x.ShlConst(3); got.Zeros != 0x07 {
		t.Errorf("shl 3: zeros = %#x, want 0x07", got.Zeros)
	}
	// urem by power-of-two constant is a mask.
	if got := x.URem(FromConst(8, 8)); got.Zeros != 0xF8 {
		t.Errorf("urem 8: zeros = %#x, want 0xF8", got.Zeros)
	}
	// Bswap moves a known low byte to the top.
	k := FromConst(16, 0x00AB)
	if got := k.Bswap(); !got.IsConst() || got.Const() != 0xAB00 {
		t.Errorf("bswap(0x00AB) = %v, want const 0xAB00", got)
	}
}
