package analysis

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/apint"
	"repro/internal/ir"
)

// LintRule names one lint check. Rules are stable identifiers: they
// appear in diagnostics, in telemetry counters (lint.<rule>) and in
// cmd/ir-lint's -disable flag.
type LintRule string

const (
	// RuleUnreachable flags blocks no path from the entry reaches.
	RuleUnreachable LintRule = "unreachable-block"
	// RuleDeadParam flags parameters without a single use.
	RuleDeadParam LintRule = "dead-param"
	// RuleUndefUse flags direct uses of a poison constant outside
	// freeze — the canonical source of surprise UB in mutants.
	RuleUndefUse LintRule = "undef-use"
	// RuleRedundantFlag flags nuw/nsw/exact flags that known bits or
	// ranges prove can never fire (the operation cannot wrap / drops no
	// bits), so the flag adds no information.
	RuleRedundantFlag LintRule = "redundant-flag"
	// RuleMisalignedMem flags loads/stores whose declared alignment is
	// not a power of two or exceeds what their allocation guarantees.
	RuleMisalignedMem LintRule = "misaligned-mem"
	// RuleAlwaysPoison flags instructions that produce poison (or are
	// immediate UB) on every execution: oversized constant shifts,
	// division by a constant zero, arithmetic whose flag always fires.
	RuleAlwaysPoison LintRule = "always-poison"
	// RuleGuaranteedUB flags instructions the poison lattice proves
	// trigger UB on every defined input that reaches them: dividing by a
	// provably-zero or always-poison divisor, branching on an
	// always-poison condition, accessing an always-poison address, or
	// assuming a provably-false condition. Unreachable blocks are skipped
	// (unreachable-block already covers them, and "always UB" is vacuous
	// on code that never runs).
	RuleGuaranteedUB LintRule = "guaranteed-ub"
	// RuleDeadFlag flags nuw/nsw/exact flags that the range/known-bits
	// lattice proves can never fire through reasoning redundant-flag does
	// not attempt — variable shift amounts bounded by range facts,
	// divisors that are range-proven constants, constant dividends. The
	// flag contributes no poison, so dropping it is a free refinement.
	RuleDeadFlag LintRule = "dead-flag"
)

// AllRules lists every rule in stable order.
var AllRules = []LintRule{
	RuleUnreachable, RuleDeadParam, RuleUndefUse,
	RuleRedundantFlag, RuleMisalignedMem, RuleAlwaysPoison,
	RuleGuaranteedUB, RuleDeadFlag,
}

// Diag is one lint finding.
type Diag struct {
	Rule  LintRule
	Func  string
	Block string // empty for function-level findings
	Msg   string
}

func (d Diag) String() string {
	if d.Block == "" {
		return fmt.Sprintf("@%s: %s: %s", d.Func, d.Rule, d.Msg)
	}
	return fmt.Sprintf("@%s/%s: %s: %s", d.Func, d.Block, d.Rule, d.Msg)
}

// LintConfig selects which rules run. The zero value runs everything.
type LintConfig struct {
	Disabled map[LintRule]bool
}

func (c LintConfig) on(r LintRule) bool { return !c.Disabled[r] }

// Lint runs the configured rules over every definition in m. Diagnostics
// come out in deterministic order (function order, then block order,
// then rule order within an instruction).
func Lint(m *ir.Module, cfg LintConfig) []Diag {
	var out []Diag
	for _, f := range m.Funcs {
		if f.IsDecl {
			continue
		}
		out = append(out, LintFunc(f, NewFacts(f), cfg)...)
	}
	return out
}

// LintFunc runs the configured rules over one function using the given
// fact provider.
func LintFunc(f *ir.Function, fa *Facts, cfg LintConfig) []Diag {
	var out []Diag
	diag := func(rule LintRule, b *ir.Block, format string, args ...any) {
		d := Diag{Rule: rule, Func: f.Name, Msg: fmt.Sprintf(format, args...)}
		if b != nil {
			d.Block = b.Nm
		}
		out = append(out, d)
	}

	if cfg.on(RuleDeadParam) {
		used := make(map[ir.Value]bool)
		for _, in := range f.Instrs() {
			for _, a := range in.Args {
				used[a] = true
			}
		}
		for _, p := range f.Params {
			if !used[p] {
				diag(RuleDeadParam, nil, "parameter %%%s is never used", p.Nm)
			}
		}
	}

	if cfg.on(RuleUnreachable) {
		dom := fa.Dom()
		for _, b := range f.Blocks {
			if b != f.Entry() && !dom.Reachable(b) {
				diag(RuleUnreachable, b, "block is unreachable from entry")
			}
		}
	}

	dom := fa.Dom()
	for _, b := range f.Blocks {
		reachable := b == f.Entry() || dom.Reachable(b)
		for _, in := range b.Instrs {
			if cfg.on(RuleUndefUse) && in.Op != ir.OpFreeze {
				for i, a := range in.Args {
					if _, isPoison := a.(*ir.Poison); isPoison {
						diag(RuleUndefUse, b, "%s: operand %d is poison (freeze it before use)", in.String(), i)
					}
				}
			}
			if cfg.on(RuleAlwaysPoison) {
				if msg, bad := alwaysPoison(in, fa); bad {
					diag(RuleAlwaysPoison, b, "%s: %s", in.String(), msg)
				}
			}
			if cfg.on(RuleRedundantFlag) {
				for _, flag := range redundantFlags(in, fa) {
					diag(RuleRedundantFlag, b, "%s: %s flag is provably redundant (operation can never %s)",
						in.String(), flag, flagEffect(flag))
				}
			}
			if cfg.on(RuleMisalignedMem) {
				if msg, bad := misaligned(in); bad {
					diag(RuleMisalignedMem, b, "%s: %s", in.String(), msg)
				}
			}
			if cfg.on(RuleGuaranteedUB) && reachable {
				if msg, bad := guaranteedUB(in, fa); bad {
					diag(RuleGuaranteedUB, b, "%s: %s", in.String(), msg)
				}
			}
			if cfg.on(RuleDeadFlag) {
				for _, flag := range deadFlags(in, fa) {
					diag(RuleDeadFlag, b, "%s: %s flag is proven dead by range/known-bits facts (it can never fire)",
						in.String(), flag)
				}
			}
		}
	}
	return out
}

// guaranteedUB detects instructions that are immediate UB on every
// defined input, through the poison lattice rather than syntax (the
// syntactic cases — a literal zero divisor, a literal poison operand —
// belong to always-poison and undef-use).
func guaranteedUB(in *ir.Instr, fa *Facts) (string, bool) {
	switch in.Op {
	case ir.OpUDiv, ir.OpSDiv, ir.OpURem, ir.OpSRem:
		div := in.Args[1]
		if _, isC := div.(*ir.Const); isC {
			return "", false // constant zero is always-poison's finding
		}
		if fa.AlwaysPoison(div) {
			return "divisor is always poison: the division is immediate UB", true
		}
		if r := fa.RangeOf(div, in.Parent()); r.IsConst() && r.ULo == 0 {
			return "divisor is provably zero: the division is immediate UB", true
		}
	case ir.OpCondBr:
		if fa.AlwaysPoison(in.Args[0]) {
			return "condition is always poison: branching on it is UB", true
		}
	case ir.OpLoad:
		if fa.AlwaysPoison(in.Args[0]) {
			return "address is always poison: the access is UB", true
		}
	case ir.OpStore:
		if fa.AlwaysPoison(in.Args[1]) {
			return "address is always poison: the access is UB", true
		}
	case ir.OpCall:
		if kind, ok := in.IsIntrinsicCall(); ok && kind == ir.IntrinsicAssume {
			if c, isC := in.Args[0].(*ir.Const); isC && c.IsZero() {
				return "assume of constant false is immediate UB", true
			}
			if fa.AlwaysPoison(in.Args[0]) {
				return "assume of an always-poison condition is immediate UB", true
			}
		}
	}
	return "", false
}

// deadFlags reports set poison flags that FlagNeverFires proves dead but
// redundantFlags (constant-operand reasoning only) does not already
// report, so each finding surfaces under exactly one rule.
func deadFlags(in *ir.Instr, fa *Facts) []string {
	if !in.Nuw && !in.Nsw && !in.Exact {
		return nil
	}
	already := map[string]bool{}
	for _, f := range redundantFlags(in, fa) {
		already[f] = true
	}
	nuw, nsw, exact := fa.FlagNeverFires(in)
	var flags []string
	if in.Nuw && nuw && !already["nuw"] {
		flags = append(flags, "nuw")
	}
	if in.Nsw && nsw && !already["nsw"] {
		flags = append(flags, "nsw")
	}
	if in.Exact && exact && !already["exact"] {
		flags = append(flags, "exact")
	}
	return flags
}

func flagEffect(flag string) string {
	if flag == "exact" {
		return "drop bits"
	}
	return "wrap"
}

// alwaysPoison detects instructions whose every execution yields poison
// or immediate UB.
func alwaysPoison(in *ir.Instr, fa *Facts) (string, bool) {
	w, isInt := ir.IsInt(in.Ty)
	switch in.Op {
	case ir.OpShl, ir.OpLShr, ir.OpAShr:
		if c, ok := in.Args[1].(*ir.Const); ok && isInt && c.Val >= uint64(w) {
			return fmt.Sprintf("shift amount %d >= width %d always yields poison", c.Val, w), true
		}
	case ir.OpUDiv, ir.OpSDiv, ir.OpURem, ir.OpSRem:
		if c, ok := in.Args[1].(*ir.Const); ok && c.Val == 0 {
			return "division by constant zero is immediate UB", true
		}
	case ir.OpAdd:
		if in.Nuw && isInt {
			a := fa.RangeOf(in.Args[0], in.Parent())
			b := fa.RangeOf(in.Args[1], in.Parent())
			if lo, carry := addU64(a.ULo, b.ULo); carry || lo > apint.Mask(w) {
				return "nuw addition always wraps", true
			}
		}
	}
	return "", false
}

func addU64(a, b uint64) (uint64, bool) {
	s := a + b
	return s, s < a
}

// redundantFlags reports which of in's poison flags provably never fire.
func redundantFlags(in *ir.Instr, fa *Facts) []string {
	if !in.Nuw && !in.Nsw && !in.Exact {
		return nil
	}
	w, ok := ir.IsInt(in.Ty)
	if !ok {
		return nil
	}
	m := apint.Mask(w)
	var flags []string
	at := in.Parent()

	switch in.Op {
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpShl:
		a := fa.RangeOf(in.Args[0], at)
		b := fa.RangeOf(in.Args[1], at)
		if in.Nuw && noUnsignedWrap(in.Op, a, b, w, m) {
			flags = append(flags, "nuw")
		}
		if in.Nsw && noSignedWrap(in.Op, a, b, w) {
			flags = append(flags, "nsw")
		}
	case ir.OpLShr, ir.OpAShr:
		if in.Exact {
			if c, ok := in.Args[1].(*ir.Const); ok && c.Val < uint64(w) {
				ka := fa.Known(in.Args[0])
				if ka.Zeros&lowMask(int(c.Val)) == lowMask(int(c.Val)) {
					flags = append(flags, "exact")
				}
			}
		}
	case ir.OpUDiv:
		if in.Exact {
			if c, ok := in.Args[1].(*ir.Const); ok && apint.IsPowerOfTwo(c.Val) {
				tz := uint64(bits.TrailingZeros64(c.Val))
				ka := fa.Known(in.Args[0])
				if ka.Zeros&lowMask(int(tz)) == lowMask(int(tz)) {
					flags = append(flags, "exact")
				}
			}
		}
	}
	return flags
}

func noUnsignedWrap(op ir.Op, a, b Range, w int, m uint64) bool {
	switch op {
	case ir.OpAdd:
		s, carry := addU64(a.UHi, b.UHi)
		return !carry && s <= m
	case ir.OpSub:
		return a.ULo >= b.UHi
	case ir.OpMul:
		hi, lo := bits.Mul64(a.UHi, b.UHi)
		return hi == 0 && lo <= m
	case ir.OpShl:
		return b.UHi < uint64(w) && a.UHi <= m>>b.UHi
	}
	return false
}

func noSignedWrap(op ir.Op, a, b Range, w int) bool {
	switch op {
	case ir.OpAdd:
		lo, loOK := addS(a.SLo, b.SLo)
		hi, hiOK := addS(a.SHi, b.SHi)
		return loOK && hiOK && lo >= minSigned(w) && hi <= maxSigned(w)
	case ir.OpSub:
		lo, loOK := subS(a.SLo, b.SHi)
		hi, hiOK := subS(a.SHi, b.SLo)
		return loOK && hiOK && lo >= minSigned(w) && hi <= maxSigned(w)
	case ir.OpMul:
		worst := [4][2]int64{{a.SLo, b.SLo}, {a.SLo, b.SHi}, {a.SHi, b.SLo}, {a.SHi, b.SHi}}
		for _, c := range worst {
			p, ok := mulS(c[0], c[1])
			if !ok || p < minSigned(w) || p > maxSigned(w) {
				return false
			}
		}
		return true
	case ir.OpShl:
		if b.UHi >= uint64(w) {
			return false
		}
		c := b.UHi
		return a.SHi <= maxSigned(w)>>c && a.SLo >= minSigned(w)>>c
	}
	return false
}

// misaligned flags alignment assertions that are malformed or exceed
// what the accessed allocation guarantees. The natural alignment of iN
// is the smallest power of two >= its byte size, capped at 8 (the
// LLVM-ish datalayout the interpreter's byte-addressed memory implies).
func misaligned(in *ir.Instr) (string, bool) {
	if in.Op != ir.OpLoad && in.Op != ir.OpStore {
		return "", false
	}
	if in.Align == 0 {
		return "", false
	}
	if !apint.IsPowerOfTwo(in.Align) {
		return fmt.Sprintf("alignment %d is not a power of two", in.Align), true
	}
	ptrIdx := 0
	if in.Op == ir.OpStore {
		ptrIdx = 1
	}
	if alloca, ok := in.Args[ptrIdx].(*ir.Instr); ok && alloca.Op == ir.OpAlloca {
		guaranteed := alloca.Align
		if guaranteed == 0 {
			guaranteed = naturalAlign(alloca.AllocTy)
		}
		if in.Align > guaranteed {
			return fmt.Sprintf("assumes align %d but %%%s only guarantees align %d",
				in.Align, alloca.Nm, guaranteed), true
		}
	}
	return "", false
}

func naturalAlign(t ir.Type) uint64 {
	w, ok := ir.IsInt(t)
	if !ok {
		return 8
	}
	size := uint64((w + 7) / 8)
	a := uint64(1)
	for a < size {
		a <<= 1
	}
	if a > 8 {
		a = 8
	}
	return a
}

// CountByRule tallies diagnostics per rule (for telemetry counters).
func CountByRule(diags []Diag) map[LintRule]int {
	out := make(map[LintRule]int)
	for _, d := range diags {
		out[d.Rule]++
	}
	return out
}

// ParseRuleList parses a comma-separated rule list (for CLI -disable).
// Unknown names are reported, not ignored.
func ParseRuleList(s string) (map[LintRule]bool, error) {
	out := make(map[LintRule]bool)
	if s == "" {
		return out, nil
	}
	known := make(map[LintRule]bool, len(AllRules))
	for _, r := range AllRules {
		known[r] = true
	}
	start := 0
	var names []string
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			names = append(names, s[start:i])
			start = i + 1
		}
	}
	sort.Strings(names)
	for _, n := range names {
		if n == "" {
			continue
		}
		if !known[LintRule(n)] {
			return nil, fmt.Errorf("unknown lint rule %q", n)
		}
		out[LintRule(n)] = true
	}
	return out, nil
}
