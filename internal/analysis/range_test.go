package analysis

import (
	"math/bits"
	"testing"

	"repro/internal/apint"
	"repro/internal/ir"
	"repro/internal/rng"
)

// hullOf builds the tightest Range containing every sample — so every
// sample is a witness the transfer's output must keep containing.
func hullOf(w int, vals []uint64) Range {
	out := ConstRange(w, vals[0])
	for _, v := range vals[1:] {
		out = out.Union(ConstRange(w, v))
	}
	return out
}

// randRange returns a range plus the concrete values it was built from.
func randRange(r *rng.Rand, w int) (Range, []uint64) {
	m := apint.Mask(w)
	n := 1 + r.Intn(5)
	vals := make([]uint64, n)
	for i := range vals {
		switch r.Intn(4) {
		case 0: // near-zero / near-top corners
			vals[i] = r.Uint64() & 3 & m
		case 1:
			vals[i] = (m - r.Uint64()&3) & m
		default:
			vals[i] = r.Uint64() & m
		}
	}
	return hullOf(w, vals), vals
}

type rgBinCase struct {
	name  string
	apply func(a, b Range) Range
	// eval returns (result, ok); ok=false marks poison/UB executions
	// where the transfer's claim is vacuous.
	eval func(a, b uint64, w int) (uint64, bool)
}

func satAddU(a, b uint64, w int) uint64 {
	m := apint.Mask(w)
	s, carry := bits.Add64(a, b, 0)
	if carry != 0 || s > m {
		return m
	}
	return s
}

func satAddS(a, b uint64, w int) uint64 {
	as, bs := apint.ToInt64(a, w), apint.ToInt64(b, w)
	s, ok := addS(as, bs)
	if !ok {
		if as > 0 {
			s = maxSigned(w)
		} else {
			s = minSigned(w)
		}
	}
	s = max64s(minSigned(w), min64s(maxSigned(w), s))
	return apint.FromInt64(s, w)
}

func satSubS(a, b uint64, w int) uint64 {
	as, bs := apint.ToInt64(a, w), apint.ToInt64(b, w)
	s, ok := subS(as, bs)
	if !ok {
		if bs < 0 {
			s = maxSigned(w)
		} else {
			s = minSigned(w)
		}
	}
	s = max64s(minSigned(w), min64s(maxSigned(w), s))
	return apint.FromInt64(s, w)
}

func rgBinCases() []rgBinCase {
	return []rgBinCase{
		{"add", func(a, b Range) Range { return a.Add(b, false, false) },
			func(a, b uint64, w int) (uint64, bool) { return apint.Add(a, b, w), true }},
		{"add-nuw", func(a, b Range) Range { return a.Add(b, true, false) },
			func(a, b uint64, w int) (uint64, bool) {
				if apint.AddOverflowsUnsigned(a, b, w) {
					return 0, false
				}
				return apint.Add(a, b, w), true
			}},
		{"add-nsw", func(a, b Range) Range { return a.Add(b, false, true) },
			func(a, b uint64, w int) (uint64, bool) {
				if apint.AddOverflowsSigned(a, b, w) {
					return 0, false
				}
				return apint.Add(a, b, w), true
			}},
		{"add-nuw-nsw", func(a, b Range) Range { return a.Add(b, true, true) },
			func(a, b uint64, w int) (uint64, bool) {
				if apint.AddOverflowsUnsigned(a, b, w) || apint.AddOverflowsSigned(a, b, w) {
					return 0, false
				}
				return apint.Add(a, b, w), true
			}},
		{"sub", func(a, b Range) Range { return a.Sub(b, false, false) },
			func(a, b uint64, w int) (uint64, bool) { return apint.Sub(a, b, w), true }},
		{"sub-nuw", func(a, b Range) Range { return a.Sub(b, true, false) },
			func(a, b uint64, w int) (uint64, bool) {
				if apint.SubOverflowsUnsigned(a, b, w) {
					return 0, false
				}
				return apint.Sub(a, b, w), true
			}},
		{"sub-nsw", func(a, b Range) Range { return a.Sub(b, false, true) },
			func(a, b uint64, w int) (uint64, bool) {
				if apint.SubOverflowsSigned(a, b, w) {
					return 0, false
				}
				return apint.Sub(a, b, w), true
			}},
		{"mul", func(a, b Range) Range { return a.Mul(b, false) },
			func(a, b uint64, w int) (uint64, bool) { return apint.Mul(a, b, w), true }},
		{"mul-nuw", func(a, b Range) Range { return a.Mul(b, true) },
			func(a, b uint64, w int) (uint64, bool) {
				if apint.MulOverflowsUnsigned(a, b, w) {
					return 0, false
				}
				return apint.Mul(a, b, w), true
			}},
		{"udiv", Range.UDiv, func(a, b uint64, w int) (uint64, bool) {
			if b == 0 {
				return 0, false
			}
			return apint.UDiv(a, b, w), true
		}},
		{"urem", Range.URem, func(a, b uint64, w int) (uint64, bool) {
			if b == 0 {
				return 0, false
			}
			return apint.URem(a, b, w), true
		}},
		{"shl", func(a, b Range) Range { return a.Shl(b, false) },
			func(a, b uint64, w int) (uint64, bool) {
				if b >= uint64(w) {
					return 0, false
				}
				return apint.Shl(a, b, w), true
			}},
		{"shl-nuw", func(a, b Range) Range { return a.Shl(b, true) },
			func(a, b uint64, w int) (uint64, bool) {
				if b >= uint64(w) || apint.ShlOverflowsUnsigned(a, b, w) {
					return 0, false
				}
				return apint.Shl(a, b, w), true
			}},
		{"lshr", Range.LShr, func(a, b uint64, w int) (uint64, bool) {
			if b >= uint64(w) {
				return 0, false
			}
			return apint.LShr(a, b, w), true
		}},
		{"ashr", Range.AShr, func(a, b uint64, w int) (uint64, bool) {
			if b >= uint64(w) {
				return 0, false
			}
			return apint.AShr(a, b, w), true
		}},
		{"smax", Range.SMax, func(a, b uint64, w int) (uint64, bool) { return apint.SMax(a, b, w), true }},
		{"smin", Range.SMin, func(a, b uint64, w int) (uint64, bool) { return apint.SMin(a, b, w), true }},
		{"umax", Range.UMax, func(a, b uint64, w int) (uint64, bool) { return apint.UMax(a, b), true }},
		{"umin", Range.UMin, func(a, b uint64, w int) (uint64, bool) { return apint.UMin(a, b), true }},
		{"uadd.sat", Range.UAddSat, func(a, b uint64, w int) (uint64, bool) { return satAddU(a, b, w), true }},
		{"usub.sat", Range.USubSat, func(a, b uint64, w int) (uint64, bool) {
			if a <= b {
				return 0, true
			}
			return a - b, true
		}},
		{"sadd.sat", Range.SAddSat, func(a, b uint64, w int) (uint64, bool) { return satAddS(a, b, w), true }},
		{"ssub.sat", Range.SSubSat, func(a, b uint64, w int) (uint64, bool) { return satSubS(a, b, w), true }},
	}
}

// TestRangeBinaryDifferential builds ranges as hulls of concrete sample
// sets and checks every transfer keeps containing every sampled
// execution, across small, medium and full widths.
func TestRangeBinaryDifferential(t *testing.T) {
	cases := rgBinCases()
	for _, w := range []int{4, 8, 64} {
		r := rng.New(uint64(0x7269 + w))
		iters := 400
		if w == 4 {
			iters = 1500
		}
		for iter := 0; iter < iters; iter++ {
			ra, vas := randRange(r, w)
			rb, vbs := randRange(r, w)
			for _, tc := range cases {
				out := tc.apply(ra, rb)
				if out.ULo > out.UHi || out.SLo > out.SHi {
					t.Fatalf("w=%d %s(%v, %v) = %v is malformed", w, tc.name, ra, rb, out)
				}
				for _, va := range vas {
					for _, vb := range vbs {
						res, ok := tc.eval(va, vb, w)
						if !ok {
							continue
						}
						if !out.Contains(res) {
							t.Fatalf("w=%d %s: a=%#x in %v, b=%#x in %v -> %#x escapes %v",
								w, tc.name, va, ra, vb, rb, res, out)
						}
					}
				}
			}
		}
	}
}

// TestRangeCastsAndAbs covers the unary transfers the binary sweep
// cannot express.
func TestRangeCastsAndAbs(t *testing.T) {
	for _, pair := range [][2]int{{4, 9}, {8, 64}, {33, 64}} {
		from, to := pair[0], pair[1]
		r := rng.New(uint64(0xca57 + from))
		for iter := 0; iter < 1000; iter++ {
			ra, vas := randRange(r, from)
			ze, se := ra.ZExt(to), ra.SExt(to)
			for _, va := range vas {
				if got := apint.ZExt(va, from, to); !ze.Contains(got) {
					t.Fatalf("zext i%d->i%d: %#x in %v -> %#x escapes %v", from, to, va, ra, got, ze)
				}
				if got := apint.SExt(va, from, to); !se.Contains(got) {
					t.Fatalf("sext i%d->i%d: %#x in %v -> %#x escapes %v", from, to, va, ra, got, se)
				}
			}
			rw, vws := randRange(r, to)
			tr := rw.Trunc(from)
			abs0, abs1 := rw.Abs(false), rw.Abs(true)
			for _, vw := range vws {
				if got := apint.Trunc(vw, from); !tr.Contains(got) {
					t.Fatalf("trunc i%d->i%d: %#x in %v -> %#x escapes %v", to, from, vw, rw, got, tr)
				}
				s := apint.ToInt64(vw, to)
				if s == minSigned(to) {
					// abs(INT_MIN) wraps to INT_MIN without the flag and
					// is poison (vacuous) with it.
					if !abs0.Contains(vw) {
						t.Fatalf("abs i%d: INT_MIN wrap escapes %v", to, abs0)
					}
					continue
				}
				av := s
				if av < 0 {
					av = -av
				}
				got := apint.FromInt64(av, to)
				if !abs0.Contains(got) || !abs1.Contains(got) {
					t.Fatalf("abs i%d: %#x in %v -> %#x escapes %v / %v", to, vw, rw, got, abs0, abs1)
				}
			}
		}
	}
}

// TestFromKnownSound: every value consistent with a bit pattern lies in
// the derived range.
func TestFromKnownSound(t *testing.T) {
	for _, k := range enumPatterns(4) {
		rg := FromKnown(k)
		for _, v := range consistentValues(k) {
			if !rg.Contains(v) {
				t.Fatalf("FromKnown(%v) = %v excludes consistent value %#x", k, rg, v)
			}
		}
	}
}

func evalPred(p ir.Pred, a, b uint64, w int) bool {
	as, bs := apint.ToInt64(a, w), apint.ToInt64(b, w)
	switch p {
	case ir.EQ:
		return a == b
	case ir.NE:
		return a != b
	case ir.ULT:
		return a < b
	case ir.ULE:
		return a <= b
	case ir.UGT:
		return a > b
	case ir.UGE:
		return a >= b
	case ir.SLT:
		return as < bs
	case ir.SLE:
		return as <= bs
	case ir.SGT:
		return as > bs
	case ir.SGE:
		return as >= bs
	}
	return false
}

// TestRangeFromPredExhaustive: at width 4, for every predicate, constant
// and value, if `v pred c` holds then the derived region contains v.
func TestRangeFromPredExhaustive(t *testing.T) {
	const w = 4
	for _, p := range ir.Preds {
		for c := uint64(0); c < 16; c++ {
			rg, ok := rangeFromPred(p, c, w)
			if !ok {
				continue
			}
			for v := uint64(0); v < 16; v++ {
				if evalPred(p, v, c, w) && !rg.Contains(v) {
					t.Fatalf("pred %v c=%d: %d satisfies it but escapes %v", p, c, v, rg)
				}
			}
		}
	}
}

// TestDecideICmpSound: when the ranges decide a comparison, every pair of
// witness values must agree with the decision.
func TestDecideICmpSound(t *testing.T) {
	for _, w := range []int{4, 8, 64} {
		r := rng.New(uint64(0xdec1 + w))
		for iter := 0; iter < 2000; iter++ {
			ra, vas := randRange(r, w)
			rb, vbs := randRange(r, w)
			for _, p := range ir.Preds {
				res, decided := DecideICmp(p, ra, rb)
				if !decided {
					continue
				}
				for _, va := range vas {
					for _, vb := range vbs {
						if evalPred(p, va, vb, w) != res {
							t.Fatalf("w=%d DecideICmp(%v, %v, %v) = %v contradicted by a=%#x b=%#x",
								w, p, ra, rb, res, va, vb)
						}
					}
				}
			}
		}
	}
}

// TestCountRange pins the ctpop/ctlz/cttz result bound.
func TestCountRange(t *testing.T) {
	for _, w := range []int{1, 2, 4, 8, 64} {
		rg := CountRange(w)
		for _, v := range []uint64{0, 1, apint.Mask(w), apint.Mask(w) >> 1} {
			for _, cnt := range []uint64{
				uint64(bits.OnesCount64(v)),
				uint64(apint.Ctlz(v, w)),
				uint64(apint.Cttz(v, w)),
			} {
				if !rg.Contains(cnt & apint.Mask(w)) {
					t.Fatalf("w=%d count %d of %#x escapes %v", w, cnt, v, rg)
				}
			}
		}
	}
}
