package analysis

import (
	"math/bits"

	"repro/internal/apint"
	"repro/internal/ir"
)

// This file is the UB/poison propagation lattice: per-value poison
// bounds (NeverPoison / AlwaysPoison) and per-flag firing proofs
// (FlagNeverFires), all phrased against the semantics in
// internal/semantics/exec.go — NOT against LLVM's documentation. The
// static refinement prover (internal/analysis/refine) and the
// guaranteed-ub / dead-flag lint rules are the consumers, and both only
// ever act on a "proven" answer, so every rule below must be sound with
// respect to the encoder:
//
//   - constants, null, allocas and freeze results are never poison;
//   - noundef parameters are never poison (the encoder pins their poison
//     flag to false);
//   - strict ops (binary arithmetic, icmp, casts, gep) propagate operand
//     poison; div/rem propagate only the dividend's poison (a poison
//     divisor is immediate UB instead);
//   - poison is *generated* by nuw/nsw/exact flags, oversized shift
//     amounts, and the int_min/zero_is_poison intrinsic flags — each
//     needs a range/known-bits proof before it can be ruled out.
//
// "false" always means "could not prove", never "proven poisonous".

// NeverPoison reports whether v is provably non-poison on every defined
// execution that computes it.
func (fa *Facts) NeverPoison(v ir.Value) bool { return fa.neverPoisonRec(v, 0) }

func (fa *Facts) neverPoisonRec(v ir.Value, depth int) bool {
	switch x := v.(type) {
	case *ir.Const, *ir.NullPtr:
		return true
	case *ir.Param:
		return x.Attrs.Noundef
	case *ir.Instr:
		if r, ok := fa.neverP[x]; ok {
			return r
		}
		if depth > maxFactsDepth || fa.inflightNP[x] {
			return false
		}
		fa.inflightNP[x] = true
		r := fa.computeNeverPoison(x, depth)
		delete(fa.inflightNP, x)
		fa.neverP[x] = r
		return r
	default:
		return false
	}
}

func (fa *Facts) computeNeverPoison(in *ir.Instr, depth int) bool {
	allOps := func() bool {
		for _, a := range in.Args {
			if !fa.neverPoisonRec(a, depth+1) {
				return false
			}
		}
		return true
	}
	switch {
	case in.Op == ir.OpFreeze, in.Op == ir.OpAlloca:
		// freeze always yields a defined value; an alloca's address is a
		// concrete base within its provenance.
		return true
	case in.Op.IsBinary():
		if !allOps() {
			return false
		}
		nuw, nsw, exact := fa.FlagNeverFires(in)
		if (in.Nuw && !nuw) || (in.Nsw && !nsw) || (in.Exact && !exact) {
			return false
		}
		if in.Op.IsShift() {
			// An oversized shift amount yields poison even without flags.
			w, _ := ir.IsInt(in.Ty)
			amt := fa.RangeOf(in.Args[1], in.Parent())
			if amt.UHi >= uint64(w) {
				return false
			}
		}
		return true
	case in.Op == ir.OpICmp, in.Op.IsCast(), in.Op == ir.OpSelect,
		in.Op == ir.OpPhi, in.Op == ir.OpGEP:
		// Pure propagators: no poison of their own.
		return allOps()
	case in.Op == ir.OpCall:
		kind, ok := in.IsIntrinsicCall()
		if !ok {
			return false // arbitrary callee: may return poison
		}
		switch kind {
		case ir.IntrinsicSMax, ir.IntrinsicSMin, ir.IntrinsicUMax, ir.IntrinsicUMin,
			ir.IntrinsicBswap, ir.IntrinsicCtpop,
			ir.IntrinsicUAddSat, ir.IntrinsicSAddSat, ir.IntrinsicUSubSat, ir.IntrinsicSSubSat:
			return allOps()
		case ir.IntrinsicAbs, ir.IntrinsicCtlz, ir.IntrinsicCttz:
			// args[1] is the is-poison flag; a constant false flag turns
			// these into pure propagators.
			if c, isC := in.Args[1].(*ir.Const); isC && c.IsZero() {
				return allOps()
			}
			return false
		}
		return false
	}
	return false
}

// AlwaysPoison reports whether v is provably poison on every execution
// that reaches it (its block may still be unreachable; reachability is
// the caller's concern).
func (fa *Facts) AlwaysPoison(v ir.Value) bool { return fa.alwaysPoisonRec(v, 0) }

func (fa *Facts) alwaysPoisonRec(v ir.Value, depth int) bool {
	switch x := v.(type) {
	case *ir.Poison:
		return true
	case *ir.Instr:
		if r, ok := fa.alwaysP[x]; ok {
			return r
		}
		if depth > maxFactsDepth || fa.inflightAP[x] {
			return false
		}
		fa.inflightAP[x] = true
		r := fa.computeAlwaysPoison(x, depth)
		delete(fa.inflightAP, x)
		fa.alwaysP[x] = r
		return r
	default:
		return false
	}
}

func (fa *Facts) computeAlwaysPoison(in *ir.Instr, depth int) bool {
	anyOp := func(idx ...int) bool {
		for _, i := range idx {
			if fa.alwaysPoisonRec(in.Args[i], depth+1) {
				return true
			}
		}
		return false
	}
	switch {
	case in.Op == ir.OpFreeze, in.Op == ir.OpAlloca:
		return false
	case in.Op.IsDivRem():
		// A poison divisor is UB, not poison; only the dividend carries
		// poison into the result.
		return anyOp(0)
	case in.Op.IsShift():
		if anyOp(0, 1) {
			return true
		}
		w, _ := ir.IsInt(in.Ty)
		amt := fa.RangeOf(in.Args[1], in.Parent())
		return amt.ULo >= uint64(w)
	case in.Op == ir.OpAdd:
		if anyOp(0, 1) {
			return true
		}
		if in.Nuw {
			w, _ := ir.IsInt(in.Ty)
			a := fa.RangeOf(in.Args[0], in.Parent())
			b := fa.RangeOf(in.Args[1], in.Parent())
			if lo, carry := addU64(a.ULo, b.ULo); carry || lo > apint.Mask(w) {
				return true
			}
		}
		return false
	case in.Op.IsBinary(), in.Op == ir.OpICmp, in.Op.IsCast(), in.Op == ir.OpGEP:
		idx := make([]int, len(in.Args))
		for i := range idx {
			idx[i] = i
		}
		return anyOp(idx...)
	case in.Op == ir.OpSelect:
		if anyOp(0) {
			return true
		}
		return fa.alwaysPoisonRec(in.Args[1], depth+1) && fa.alwaysPoisonRec(in.Args[2], depth+1)
	case in.Op == ir.OpPhi:
		if len(in.Args) == 0 {
			return false
		}
		for _, a := range in.Args {
			if !fa.alwaysPoisonRec(a, depth+1) {
				return false
			}
		}
		return true
	}
	return false
}

// FlagNeverFires reports, for each poison flag in's opcode can carry,
// whether range and known-bits facts prove the flag can never fire on
// defined operands — whether or not the flag is actually set. Unlike
// redundantFlags it reasons about variable shift amounts and divisors
// through their ranges, so it subsumes the constant-only arguments.
func (fa *Facts) FlagNeverFires(in *ir.Instr) (nuw, nsw, exact bool) {
	w, ok := ir.IsInt(in.Ty)
	if !ok {
		return false, false, false
	}
	at := in.Parent()
	switch in.Op {
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpShl:
		a := fa.RangeOf(in.Args[0], at)
		b := fa.RangeOf(in.Args[1], at)
		return noUnsignedWrap(in.Op, a, b, w, apint.Mask(w)),
			noSignedWrap(in.Op, a, b, w), false
	case ir.OpLShr, ir.OpAShr:
		amt := fa.RangeOf(in.Args[1], at)
		if amt.UHi < uint64(w) {
			ka := fa.Known(in.Args[0])
			m := lowMask(int(amt.UHi))
			if ka.Zeros&m == m {
				return false, false, true
			}
		}
		return false, false, false
	case ir.OpUDiv, ir.OpSDiv:
		d := fa.RangeOf(in.Args[1], at)
		if !d.IsConst() {
			return false, false, false
		}
		c := d.ULo
		if kn := fa.Known(in.Args[0]); kn.IsConst() && c != 0 {
			return false, false, in.Op == ir.OpUDiv && kn.Const()%c == 0
		}
		if in.Op == ir.OpUDiv && apint.IsPowerOfTwo(c) {
			tz := bits.TrailingZeros64(c)
			ka := fa.Known(in.Args[0])
			m := lowMask(tz)
			return false, false, ka.Zeros&m == m
		}
		return false, false, false
	}
	return false, false, false
}
