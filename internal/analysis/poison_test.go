package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/ir"
	"repro/internal/parser"
)

// factsFor parses a single-function module and returns its facts plus an
// index of named instructions.
func factsFor(t *testing.T, text string) (*analysis.Facts, map[string]*ir.Instr) {
	t.Helper()
	mod, err := parser.Parse(text)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	f := mod.Defs()[0]
	byName := map[string]*ir.Instr{}
	f.ForEachInstr(func(_ *ir.Block, _ int, in *ir.Instr) bool {
		if in.Nm != "" {
			byName[in.Nm] = in
		}
		return true
	})
	return analysis.NewFacts(f), byName
}

func TestNeverPoisonLattice(t *testing.T) {
	fa, ins := factsFor(t, `define i8 @f(i8 %x, i8 noundef %n) {
  %plain = add i8 %x, 1
  %clean = add i8 %n, 1
  %flagged = add nsw i8 %n, 1
  %masked = and i8 %n, 15
  %deadflag = add nuw i8 %masked, 1
  %fz = freeze i8 %plain
  %cmp = icmp ult i8 %n, 7
  %sel = select i1 %cmp, i8 %clean, i8 %masked
}`)
	want := map[string]bool{
		// %x may be poison, so anything built on it (short of freeze) may be.
		"plain": false,
		// noundef parameter, flagless op: never poison.
		"clean": true,
		// nsw on an unconstrained operand: may fire.
		"flagged": false,
		"masked":  true,
		// nuw on [0,15]+1 at width 8: range facts prove it dead.
		"deadflag": true,
		// freeze always yields a defined value.
		"fz":  true,
		"cmp": true,
		"sel": true,
	}
	for name, exp := range want {
		if got := fa.NeverPoison(ins[name]); got != exp {
			t.Errorf("NeverPoison(%%%s) = %v, want %v", name, got, exp)
		}
	}
}

func TestAlwaysPoisonLattice(t *testing.T) {
	fa, ins := factsFor(t, `define i8 @f(i8 %x) {
  %p = add i8 poison, 0
  %strict = xor i8 %p, %x
  %shifted = shl i8 %x, 9
  %divp = udiv i8 %p, %x
  %divbyp = udiv i8 %x, %p
  %fz = freeze i8 %p
  %sel1 = select i1 true, i8 %p, i8 %x
  %sel2 = select i1 true, i8 %x, i8 %p
}`)
	want := map[string]bool{
		"p":      true,
		"strict": true,
		// Shift amount 9 >= width 8: poison without any flag.
		"shifted": true,
		// Poison dividend propagates...
		"divp": true,
		// ...but a poison divisor is UB, not poison.
		"divbyp": false,
		"fz":     false,
		// Only one arm provably poison: the select may pick the other.
		"sel1": false,
		"sel2": false,
	}
	for name, exp := range want {
		if got := fa.AlwaysPoison(ins[name]); got != exp {
			t.Errorf("AlwaysPoison(%%%s) = %v, want %v", name, got, exp)
		}
	}
}

func TestFlagNeverFires(t *testing.T) {
	fa, ins := factsFor(t, `define i8 @f(i8 %x) {
  %lo = and i8 %x, 15
  %sum = add i8 %lo, %lo
  %wide = add i8 %x, %x
  %bytes = and i8 %x, 252
  %shr = lshr i8 %bytes, 2
  %shrx = lshr i8 %x, 2
  %quot = udiv i8 %bytes, 4
  %quotx = udiv i8 %x, 3
}`)
	cases := []struct {
		name             string
		wantNuw, wantNsw bool
		wantExact        bool
	}{
		// [0,15]+[0,15] = [0,30] at width 8: neither wrap fires.
		{"sum", true, true, false},
		// Unconstrained x+x: both wraps possible.
		{"wide", false, false, false},
		// Low two bits known zero, shifted out by 2: exact.
		{"shr", false, false, true},
		{"shrx", false, false, false},
		// Power-of-two divisor with matching trailing zeros: exact.
		{"quot", false, false, true},
		{"quotx", false, false, false},
	}
	for _, c := range cases {
		nuw, nsw, exact := fa.FlagNeverFires(ins[c.name])
		if nuw != c.wantNuw || nsw != c.wantNsw || exact != c.wantExact {
			t.Errorf("FlagNeverFires(%%%s) = (nuw=%v nsw=%v exact=%v), want (nuw=%v nsw=%v exact=%v)",
				c.name, nuw, nsw, exact, c.wantNuw, c.wantNsw, c.wantExact)
		}
	}
}
