package analysis

import (
	"strings"
	"testing"

	"repro/internal/parser"
)

// lintSrc runs the full rule set over one module source.
func lintSrc(t *testing.T, src string) []Diag {
	t.Helper()
	return Lint(parser.MustParse(src), LintConfig{})
}

func hasRule(diags []Diag, r LintRule) bool {
	for _, d := range diags {
		if d.Rule == r {
			return true
		}
	}
	return false
}

func TestLintUnreachableBlock(t *testing.T) {
	diags := lintSrc(t, `define i8 @f(i8 %x) {
entry:
  ret i8 %x
orphan:
  ret i8 0
}
`)
	if !hasRule(diags, RuleUnreachable) {
		t.Fatalf("unreachable block not flagged: %v", diags)
	}
}

func TestLintDeadParam(t *testing.T) {
	diags := lintSrc(t, `define i8 @f(i8 %x, i8 %unused) {
  ret i8 %x
}
`)
	if !hasRule(diags, RuleDeadParam) {
		t.Fatalf("dead param not flagged: %v", diags)
	}
	for _, d := range diags {
		if d.Rule == RuleDeadParam && !strings.Contains(d.Msg, "unused") {
			t.Errorf("dead-param diag names wrong param: %s", d.Msg)
		}
	}
}

func TestLintUndefUse(t *testing.T) {
	diags := lintSrc(t, `define i8 @f(i8 %x) {
  %a = add i8 poison, %x
  ret i8 %a
}
`)
	if !hasRule(diags, RuleUndefUse) {
		t.Fatalf("poison operand not flagged: %v", diags)
	}
	// freeze poison is the sanctioned laundering idiom: no diagnostic.
	clean := lintSrc(t, `define i8 @f() {
  %a = freeze i8 poison
  ret i8 %a
}
`)
	if hasRule(clean, RuleUndefUse) {
		t.Fatalf("freeze poison wrongly flagged: %v", clean)
	}
}

func TestLintAlwaysPoison(t *testing.T) {
	for _, src := range []string{
		`define i8 @f(i8 %x) {
  %s = shl i8 %x, 9
  ret i8 %s
}
`,
		`define i8 @f(i8 %x) {
  %d = udiv i8 %x, 0
  ret i8 %d
}
`,
		`define i8 @f(i8 %x) {
  %a = or i8 %x, 128
  %b = or i8 %x, 129
  %s = add nuw i8 %a, %b
  ret i8 %s
}
`,
	} {
		if diags := lintSrc(t, src); !hasRule(diags, RuleAlwaysPoison) {
			t.Errorf("always-poison not flagged in:\n%s\ngot %v", src, diags)
		}
	}
}

func TestLintRedundantFlag(t *testing.T) {
	// zext-bounded operands cannot wrap an i16 add: nuw and nsw are
	// both redundant.
	diags := lintSrc(t, `define i16 @f(i8 %x, i8 %y) {
  %zx = zext i8 %x to i16
  %zy = zext i8 %y to i16
  %s = add nuw nsw i16 %zx, %zy
  ret i16 %s
}
`)
	if !hasRule(diags, RuleRedundantFlag) {
		t.Fatalf("redundant add flags not flagged: %v", diags)
	}
	// shl of a masked value known to drop no set bits: exact lshr.
	diags = lintSrc(t, `define i8 @f(i8 %x) {
  %hi = shl i8 %x, 4
  %s = lshr exact i8 %hi, 4
  ret i8 %s
}
`)
	if !hasRule(diags, RuleRedundantFlag) {
		t.Fatalf("redundant exact not flagged: %v", diags)
	}
	// A genuinely informative flag stays quiet.
	clean := lintSrc(t, `define i8 @f(i8 %x, i8 %y) {
  %s = add nuw i8 %x, %y
  ret i8 %s
}
`)
	if hasRule(clean, RuleRedundantFlag) {
		t.Fatalf("informative nuw wrongly flagged: %v", clean)
	}
}

func TestLintMisalignedMem(t *testing.T) {
	// Over-aligned access to an alloca with a weaker guarantee.
	diags := lintSrc(t, `define i8 @f() {
  %p = alloca i8, align 1
  %v = load i8, ptr %p, align 8
  ret i8 %v
}
`)
	if !hasRule(diags, RuleMisalignedMem) {
		t.Fatalf("over-aligned load not flagged: %v", diags)
	}
	clean := lintSrc(t, `define i8 @f() {
  %p = alloca i8, align 8
  %v = load i8, ptr %p, align 8
  ret i8 %v
}
`)
	if hasRule(clean, RuleMisalignedMem) {
		t.Fatalf("correctly aligned load wrongly flagged: %v", clean)
	}
}

func TestLintConfigDisables(t *testing.T) {
	src := `define i8 @f(i8 %x, i8 %unused) {
  ret i8 %x
}
`
	all := Lint(parser.MustParse(src), LintConfig{})
	if !hasRule(all, RuleDeadParam) {
		t.Fatal("fixture lost its finding")
	}
	off := Lint(parser.MustParse(src), LintConfig{Disabled: map[LintRule]bool{RuleDeadParam: true}})
	if hasRule(off, RuleDeadParam) {
		t.Fatalf("disabled rule still fired: %v", off)
	}
}

func TestLintDeterministicOrder(t *testing.T) {
	src := `define i8 @f(i8 %a, i8 %b, i8 %c) {
entry:
  ret i8 0
dead1:
  ret i8 1
dead2:
  ret i8 2
}
`
	first := lintSrc(t, src)
	for i := 0; i < 10; i++ {
		again := lintSrc(t, src)
		if len(again) != len(first) {
			t.Fatalf("diag count varies: %d vs %d", len(first), len(again))
		}
		for j := range again {
			if again[j] != first[j] {
				t.Fatalf("diag order varies at %d: %v vs %v", j, first[j], again[j])
			}
		}
	}
}

func TestParseRuleList(t *testing.T) {
	m, err := ParseRuleList("dead-param,unreachable-block")
	if err != nil || !m[RuleDeadParam] || !m[RuleUnreachable] {
		t.Fatalf("ParseRuleList: %v %v", m, err)
	}
	if _, err := ParseRuleList("no-such-rule"); err == nil {
		t.Fatal("unknown rule accepted")
	}
	if m, err := ParseRuleList(""); err != nil || len(m) != 0 {
		t.Fatalf("empty list: %v %v", m, err)
	}
}

func TestCountByRule(t *testing.T) {
	diags := lintSrc(t, `define i8 @f(i8 %x, i8 %u1, i8 %u2) {
  ret i8 %x
}
`)
	counts := CountByRule(diags)
	if counts[RuleDeadParam] != 2 {
		t.Fatalf("CountByRule: %v, want 2 dead params", counts)
	}
}
