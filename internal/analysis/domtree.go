// Package analysis provides the program analyses the mutation engine and
// the optimizer depend on: dominator trees, def-use information,
// shufflable instruction ranges, and literal-constant scans — plus the
// two-level mutant overlay cache described in §III-B of the paper, which
// lets thousands of mutants per second reuse the analyses computed once
// on the original function. On top of those structural analyses, the
// package implements the dataflow layer (known-bits, constant ranges,
// demanded bits) behind the cached Facts object, and the IR lint suite.
package analysis

import (
	"repro/internal/graph"
	"repro/internal/ir"
)

// DomTree is a dominator tree over a function's basic blocks. The actual
// algorithm (Cooper–Harvey–Kennedy with DFS intervals for O(1) queries)
// lives in internal/graph and is shared with the IR verifier; this type
// adds the block-pointer view the rest of the analyses want.
type DomTree struct {
	f    *ir.Function
	tree *graph.DomTree
	idx  map[*ir.Block]int
}

// BuildDomTree computes the dominator tree of f. Blocks unreachable from
// the entry are recorded as such; they dominate nothing and are dominated
// by nothing.
func BuildDomTree(f *ir.Function) *DomTree {
	idx := make(map[*ir.Block]int, len(f.Blocks))
	for i, b := range f.Blocks {
		idx[b] = i
	}
	succs := func(i int) []int {
		ss := f.Blocks[i].Succs()
		out := make([]int, len(ss))
		for j, s := range ss {
			out[j] = idx[s]
		}
		return out
	}
	entry := 0
	if len(f.Blocks) > 0 {
		entry = idx[f.Entry()]
	}
	return &DomTree{
		f:    f,
		tree: graph.Dominators(len(f.Blocks), entry, succs),
		idx:  idx,
	}
}

// IDom returns the immediate dominator of b (nil for the entry block and
// for unreachable blocks).
func (t *DomTree) IDom(b *ir.Block) *ir.Block {
	i, ok := t.idx[b]
	if !ok {
		return nil
	}
	p := t.tree.IDom(i)
	if p < 0 {
		return nil
	}
	return t.f.Blocks[p]
}

// Reachable reports whether b is reachable from the entry.
func (t *DomTree) Reachable(b *ir.Block) bool {
	i, ok := t.idx[b]
	return ok && t.tree.Reachable(i)
}

// Dominates reports whether a dominates b (reflexively: every block
// dominates itself). Unreachable blocks neither dominate nor are
// dominated.
func (t *DomTree) Dominates(a, b *ir.Block) bool {
	ai, aok := t.idx[a]
	bi, bok := t.idx[b]
	return aok && bok && t.tree.Dominates(ai, bi)
}

// StrictlyDominates reports a dominates b and a != b.
func (t *DomTree) StrictlyDominates(a, b *ir.Block) bool {
	return a != b && t.Dominates(a, b)
}
