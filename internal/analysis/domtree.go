// Package analysis provides the program analyses the mutation engine
// depends on: dominator trees, def-use information, shufflable instruction
// ranges, and literal-constant scans — plus the two-level mutant overlay
// cache described in §III-B of the paper, which lets thousands of mutants
// per second reuse the analyses computed once on the original function.
package analysis

import (
	"repro/internal/ir"
)

// DomTree is a dominator tree over a function's basic blocks, built with
// the Cooper–Harvey–Kennedy iterative algorithm and annotated with DFS
// intervals for O(1) dominance queries.
type DomTree struct {
	f     *ir.Function
	idom  map[*ir.Block]*ir.Block
	in    map[*ir.Block]int
	out   map[*ir.Block]int
	reach map[*ir.Block]bool
}

// BuildDomTree computes the dominator tree of f. Blocks unreachable from
// the entry are recorded as such; they dominate nothing and are dominated
// by nothing.
func BuildDomTree(f *ir.Function) *DomTree {
	entry := f.Entry()

	// Postorder DFS over the CFG.
	var post []*ir.Block
	seen := map[*ir.Block]bool{entry: true}
	var dfs func(*ir.Block)
	dfs = func(b *ir.Block) {
		for _, s := range b.Succs() {
			if !seen[s] {
				seen[s] = true
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(entry)

	rpo := make([]*ir.Block, len(post))
	num := make(map[*ir.Block]int, len(post))
	for i := range post {
		rpo[len(post)-1-i] = post[i]
	}
	for i, b := range rpo {
		num[b] = i
	}

	preds := make(map[*ir.Block][]*ir.Block, len(f.Blocks))
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			preds[s] = append(preds[s], b)
		}
	}

	idom := make(map[*ir.Block]*ir.Block, len(rpo))
	idom[entry] = entry
	intersect := func(a, b *ir.Block) *ir.Block {
		for a != b {
			for num[a] > num[b] {
				a = idom[a]
			}
			for num[b] > num[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range rpo[1:] {
			var newIdom *ir.Block
			for _, p := range preds[b] {
				if !seen[p] || idom[p] == nil {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != nil && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}

	t := &DomTree{
		f:     f,
		idom:  idom,
		in:    make(map[*ir.Block]int, len(rpo)),
		out:   make(map[*ir.Block]int, len(rpo)),
		reach: seen,
	}
	t.idom[entry] = nil

	// DFS over the dominator tree to assign intervals.
	children := make(map[*ir.Block][]*ir.Block)
	for _, b := range rpo[1:] {
		children[idom[b]] = append(children[idom[b]], b)
	}
	clock := 0
	var number func(*ir.Block)
	number = func(b *ir.Block) {
		clock++
		t.in[b] = clock
		for _, c := range children[b] {
			number(c)
		}
		clock++
		t.out[b] = clock
	}
	number(entry)
	return t
}

// IDom returns the immediate dominator of b (nil for the entry block and
// for unreachable blocks).
func (t *DomTree) IDom(b *ir.Block) *ir.Block { return t.idom[b] }

// Reachable reports whether b is reachable from the entry.
func (t *DomTree) Reachable(b *ir.Block) bool { return t.reach[b] }

// Dominates reports whether a dominates b (reflexively: every block
// dominates itself). Unreachable blocks neither dominate nor are
// dominated.
func (t *DomTree) Dominates(a, b *ir.Block) bool {
	if !t.reach[a] || !t.reach[b] {
		return false
	}
	return t.in[a] <= t.in[b] && t.out[b] <= t.out[a]
}

// StrictlyDominates reports a dominates b and a != b.
func (t *DomTree) StrictlyDominates(a, b *ir.Block) bool {
	return a != b && t.Dominates(a, b)
}
