package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/apint"
	"repro/internal/corpus"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/rng"
)

// The differential soundness harness: generate random modules with the
// corpus generator, compute every claim the analysis layer makes about
// them (known bits, guard-refined ranges, demanded bits), then execute
// the functions concretely and assert the claims hold on every observed
// value. Facts are contracts about non-poison values of UB-free runs, so
// poison observations and UB executions are vacuous.
//
// Demanded bits make a stronger, whole-run claim — bits outside the
// demanded mask never influence observable behaviour — which is checked
// by re-running with those bits flipped (via the interpreter's Override
// hook) and comparing the final result bit-for-bit.

// claim is everything the analysis asserts about one instruction.
type claim struct {
	in       *ir.Instr
	width    int
	known    analysis.KnownBits
	rng      analysis.Range
	demanded uint64
}

// soundnessModules is the number of random modules the full run checks
// (the acceptance bar); -short keeps CI's race shard quick.
const soundnessModules = 10000

func TestAnalysisSoundnessDifferential(t *testing.T) {
	n := soundnessModules
	if testing.Short() {
		n = 1000
	}
	stats := struct{ funcs, runs, ubRuns, valueChecks, demandedRuns int }{}
	for seed := 0; seed < n; seed++ {
		mod := corpus.Generate(uint64(seed)*0x9e37+1, 1)
		r := rng.New(uint64(seed) ^ 0x5bd1e995)
		for _, f := range mod.Defs() {
			stats.funcs++
			checkFunctionSoundness(t, mod, f, r, &stats.runs, &stats.ubRuns, &stats.valueChecks, &stats.demandedRuns)
			if t.Failed() {
				t.Fatalf("soundness violation in module seed %d:\n%s", seed, f)
			}
		}
	}
	t.Logf("checked %d modules / %d functions: %d runs (%d UB), %d value claims, %d demanded-bits re-runs",
		n, stats.funcs, stats.runs, stats.ubRuns, stats.valueChecks, stats.demandedRuns)
}

func checkFunctionSoundness(t *testing.T, mod *ir.Module, f *ir.Function, r *rng.Rand,
	runs, ubRuns, valueChecks, demandedRuns *int) {
	fa := analysis.NewFacts(f)

	// Gather every claim up front. Guard-refined ranges are queried at the
	// defining block: on any concrete path the guards dominating it have
	// executed (and assumes held, else the run was UB) by the time the
	// value exists. The corpus generator emits loop-free functions only;
	// keep the harness honest about that precondition.
	if f.HasLoop() {
		t.Errorf("corpus generated a loop in @%s; harness expects loop-free functions", f.Name)
		return
	}
	var claims []claim
	claimOf := map[*ir.Instr]int{}
	f.ForEachInstr(func(_ *ir.Block, _ int, in *ir.Instr) bool {
		w, isInt := ir.IsInt(in.Ty)
		if !isInt {
			return true
		}
		c := claim{
			in:       in,
			width:    w,
			known:    fa.Known(in),
			rng:      fa.RangeOf(in, in.Parent()),
			demanded: fa.Demanded(in),
		}
		claimOf[in] = len(claims)
		claims = append(claims, c)
		return true
	})

	const trials = 3
	for trial := 0; trial < trials; trial++ {
		args := randomArgs(r, f, trial)
		oracle := &interp.HashOracle{Seed: uint64(trial)*0x9e3779b9 + 7}

		// Baseline run, observing every integer definition.
		observed := make([]interp.Value, len(claims))
		seen := make([]bool, len(claims))
		in := &interp.Interp{Mod: mod, Oracle: oracle}
		in.OnValue = func(instr *ir.Instr, v interp.Value) {
			if i, ok := claimOf[instr]; ok {
				observed[i], seen[i] = v, true
			}
		}
		base, err := in.Run(f, args)
		if err != nil {
			return // unsupported construct: no claims to discharge
		}
		*runs++
		if base.UB {
			*ubRuns++
			continue // claims are vacuous on UB executions
		}

		for i, c := range claims {
			if !seen[i] || observed[i].Poison {
				continue // unexecuted or poison: vacuous
			}
			v := observed[i].Bits & apint.Mask(c.width)
			*valueChecks++
			if v&c.known.Zeros != 0 || (^v)&c.known.Ones != 0 {
				t.Errorf("known-bits violation: %%%s = %#x contradicts zeros=%#x ones=%#x (args %v)",
					c.in.Nm, v, c.known.Zeros, c.known.Ones, args)
			}
			if !c.rng.Contains(v) {
				t.Errorf("range violation: %%%s = %#x outside %s (args %v)",
					c.in.Nm, v, c.rng, args)
			}
		}
		if t.Failed() {
			return
		}

		// Demanded bits: flip the claimed-dead bits of one instruction per
		// re-run; the observable result must not move. Skip instructions
		// whose every bit is demanded (nothing to flip).
		for i, c := range claims {
			dead := ^c.demanded & apint.Mask(c.width)
			if dead == 0 || !seen[i] || observed[i].Poison {
				continue
			}
			target := c.in
			flipped := &interp.Interp{Mod: mod, Oracle: oracle}
			flipped.Override = func(instr *ir.Instr, v interp.Value) interp.Value {
				if instr == target && !v.Poison {
					v.Bits ^= dead
				}
				return v
			}
			got, err := flipped.Run(f, args)
			if err != nil {
				continue
			}
			*demandedRuns++
			if !interp.ObservablyEqual(base, got) {
				t.Errorf("demanded-bits violation: flipping dead bits %#x of %%%s changed the result: base=%+v got=%+v (args %v)",
					dead, target.Nm, base, got, args)
				return
			}
		}
	}
}

// randomArgs builds one argument vector for f: corner values on the first
// trial, random afterwards. Pointer arguments get 8-aligned nonzero
// addresses in the external provenance.
func randomArgs(r *rng.Rand, f *ir.Function, trial int) []interp.Value {
	args := make([]interp.Value, len(f.Params))
	for i, p := range f.Params {
		if ir.IsPtr(p.Ty) {
			args[i] = interp.Value{Bits: (8 + uint64(r.Intn(1<<12))*8)}
			continue
		}
		w, _ := ir.IsInt(p.Ty)
		m := apint.Mask(w)
		if trial == 0 {
			corners := []uint64{0, 1, m, m >> 1, (m >> 1) + 1}
			args[i] = interp.Value{Bits: corners[r.Intn(len(corners))]}
		} else {
			args[i] = interp.Value{Bits: r.Uint64() & m}
		}
	}
	return args
}
