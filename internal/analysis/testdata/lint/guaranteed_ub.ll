define i8 @div_by_proven_zero(i8 %x, i8 %y) {
  %z = and i8 %x, 0
  %q = udiv i8 %y, %z
  ret i8 %q
}

define i8 @assume_false(i8 %x) {
  call void @llvm.assume(i1 false)
  ret i8 %x
}
