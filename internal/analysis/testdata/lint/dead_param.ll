define i32 @uses_half(i32 %used, i32 %never) {
  %r = add i32 %used, 7
  ret i32 %r
}
