define i8 @oversized_shift(i8 %x) {
  %s = shl i8 %x, 12
  ret i8 %s
}

define i8 @div_by_zero(i8 %x) {
  %d = udiv i8 %x, 0
  ret i8 %d
}
