define i8 @exact_variable_shift(i8 %x, i8 %a) {
  %amt = and i8 %a, 3
  %lo = and i8 %x, 248
  %s = lshr exact i8 %lo, %amt
  ret i8 %s
}

define i8 @exact_range_const_divisor(i8 %y, i8 %d0) {
  %d = or i8 %d0, 8
  %dc = and i8 %d, 8
  %lo2 = and i8 %y, 248
  %q = udiv exact i8 %lo2, %dc
  ret i8 %q
}
