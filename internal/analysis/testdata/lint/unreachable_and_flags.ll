define i16 @dead_code(i8 %x) {
entry:
  %zx = zext i8 %x to i16
  %s = add nuw nsw i16 %zx, %zx
  ret i16 %s
island:
  ret i16 0
}
