define i16 @raw_poison(i16 %x) {
  %a = add i16 poison, %x
  ret i16 %a
}
