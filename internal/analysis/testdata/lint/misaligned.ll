define i8 @overaligned() {
  %p = alloca i8, align 1
  %v = load i8, ptr %p, align 8
  ret i8 %v
}
