package analysis

import (
	"fmt"
	"math/bits"

	"repro/internal/apint"
	"repro/internal/ir"
)

// Range is a pair of non-wrapped intervals over a width-w integer value:
// an unsigned interval [ULo, UHi] and a signed interval [SLo, SHi], both
// inclusive. The claim is the same shape as KnownBits': every NON-POISON
// runtime value lies in both intervals. Unlike LLVM's wrapped
// ConstantRange this cannot express "everything except a middle chunk",
// but every element is trivially checkable against a concrete execution,
// which is what the differential soundness harness wants.
type Range struct {
	Width    int
	ULo, UHi uint64
	SLo, SHi int64
}

// FullRange is the no-information element at width w.
func FullRange(w int) Range {
	return Range{Width: w, ULo: 0, UHi: apint.Mask(w), SLo: minSigned(w), SHi: maxSigned(w)}
}

// ConstRange is the single-value element.
func ConstRange(w int, v uint64) Range {
	v &= apint.Mask(w)
	s := apint.ToInt64(v, w)
	return Range{Width: w, ULo: v, UHi: v, SLo: s, SHi: s}
}

// BoolRange is the i1 [0,1] element (i1 is signed [-1, 0]).
func BoolRange() Range { return Range{Width: 1, ULo: 0, UHi: 1, SLo: -1, SHi: 0} }

func minSigned(w int) int64 { return -(int64(1) << uint(w-1)) }
func maxSigned(w int) int64 { return int64(1)<<uint(w-1) - 1 }

func (r Range) String() string {
	return fmt.Sprintf("i%d u[%d,%d] s[%d,%d]", r.Width, r.ULo, r.UHi, r.SLo, r.SHi)
}

// Contains reports whether the concrete canonical value v satisfies the
// claim.
func (r Range) Contains(v uint64) bool {
	v &= apint.Mask(r.Width)
	s := apint.ToInt64(v, r.Width)
	return r.ULo <= v && v <= r.UHi && r.SLo <= s && s <= r.SHi
}

// IsConst reports whether the range pins a single value.
func (r Range) IsConst() bool { return r.ULo == r.UHi }
func (r Range) Const() uint64 { return r.ULo }

// Union is the lattice meet (interval hull of both claims).
func (r Range) Union(o Range) Range {
	return Range{
		Width: r.Width,
		ULo:   min64u(r.ULo, o.ULo), UHi: max64u(r.UHi, o.UHi),
		SLo: min64s(r.SLo, o.SLo), SHi: max64s(r.SHi, o.SHi),
	}
}

// Intersect tightens both intervals. An empty intersection (possible only
// for values that are always poison or on dead paths, where claims are
// vacuous) collapses to the single point at the crossing to keep the
// non-wrapped invariant.
func (r Range) Intersect(o Range) Range {
	out := Range{
		Width: r.Width,
		ULo:   max64u(r.ULo, o.ULo), UHi: min64u(r.UHi, o.UHi),
		SLo: max64s(r.SLo, o.SLo), SHi: min64s(r.SHi, o.SHi),
	}
	if out.ULo > out.UHi {
		out.UHi = out.ULo
	}
	if out.SLo > out.SHi {
		out.SHi = out.SLo
	}
	return out
}

// FromKnown converts bit-level knowledge into interval knowledge.
func FromKnown(k KnownBits) Range {
	w := k.Width
	m := apint.Mask(w)
	sb := uint64(1) << uint(w-1)
	lo := k.Ones
	if k.Zeros&sb == 0 {
		lo |= sb
	}
	hi := ^k.Zeros & m
	if k.Ones&sb == 0 {
		hi &^= sb
	}
	return Range{
		Width: w,
		ULo:   k.UMin(), UHi: k.UMax(),
		SLo: apint.ToInt64(lo, w), SHi: apint.ToInt64(hi, w),
	}
}

func min64u(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func max64u(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func min64s(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64s(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// addS/subS/mulS are int64 arithmetic with overflow reporting, needed
// only at width 64 where bound arithmetic can escape int64.
func addS(a, b int64) (int64, bool) {
	s := a + b
	if (b > 0 && s < a) || (b < 0 && s > a) {
		return 0, false
	}
	return s, true
}

func subS(a, b int64) (int64, bool) {
	s := a - b
	if (b < 0 && s < a) || (b > 0 && s > a) {
		return 0, false
	}
	return s, true
}

func mulS(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	s := a * b
	if s/b != a || (a == -1 && b == minSigned(64)) || (b == -1 && a == minSigned(64)) {
		return 0, false
	}
	return s, true
}

// Add is the range transfer for add with the given poison flags. When
// wrapping is possible and the matching flag is absent, the affected
// interval widens to full; with the flag, wrapping executions are poison
// (vacuous), so the interval stays the clamped true-arithmetic one.
func (r Range) Add(o Range, nuw, nsw bool) Range {
	w := r.Width
	m := apint.Mask(w)
	out := FullRange(w)

	uLo, loCarry := bits.Add64(r.ULo, o.ULo, 0)
	uHi, hiCarry := bits.Add64(r.UHi, o.UHi, 0)
	if hiCarry == 0 && uHi <= m {
		out.ULo, out.UHi = uLo, uHi
	} else if nuw {
		// Non-poison sums did not wrap, so they are >= the true low
		// bound (or no such sums exist and the claim is vacuous).
		if loCarry == 0 && uLo <= m {
			out.ULo, out.UHi = uLo, m
		} else {
			out.ULo, out.UHi = m, m
		}
	}

	sLo, loOK := addS(r.SLo, o.SLo)
	sHi, hiOK := addS(r.SHi, o.SHi)
	if loOK && hiOK && sLo >= minSigned(w) && sHi <= maxSigned(w) {
		out.SLo, out.SHi = sLo, sHi
	} else if nsw {
		out.SLo, out.SHi = minSigned(w), maxSigned(w)
		if loOK {
			out.SLo = max64s(sLo, minSigned(w))
		}
		if hiOK {
			out.SHi = min64s(sHi, maxSigned(w))
		}
		if out.SLo > out.SHi {
			out.SHi = out.SLo
		}
	}
	return out
}

// Sub is the range transfer for sub with the given poison flags.
func (r Range) Sub(o Range, nuw, nsw bool) Range {
	w := r.Width
	out := FullRange(w)

	if r.ULo >= o.UHi {
		out.ULo, out.UHi = r.ULo-o.UHi, r.UHi-o.ULo
	} else if nuw {
		out.ULo = 0
		if r.UHi >= o.ULo {
			out.UHi = r.UHi - o.ULo
		} else {
			out.UHi = 0
		}
	}

	sLo, loOK := subS(r.SLo, o.SHi)
	sHi, hiOK := subS(r.SHi, o.SLo)
	if loOK && hiOK && sLo >= minSigned(w) && sHi <= maxSigned(w) {
		out.SLo, out.SHi = sLo, sHi
	} else if nsw {
		out.SLo, out.SHi = minSigned(w), maxSigned(w)
		if loOK {
			out.SLo = max64s(sLo, minSigned(w))
		}
		if hiOK {
			out.SHi = min64s(sHi, maxSigned(w))
		}
		if out.SLo > out.SHi {
			out.SHi = out.SLo
		}
	}
	return out
}

// Mul is the range transfer for mul.
func (r Range) Mul(o Range, nuw bool) Range {
	w := r.Width
	m := apint.Mask(w)
	out := FullRange(w)

	hiWord, prod := bits.Mul64(r.UHi, o.UHi)
	if hiWord == 0 && prod <= m {
		out.ULo, out.UHi = r.ULo*o.ULo, prod
	} else if nuw {
		loWord, lprod := bits.Mul64(r.ULo, o.ULo)
		if loWord == 0 && lprod <= m {
			out.ULo, out.UHi = lprod, m
		} else {
			out.ULo, out.UHi = m, m
		}
	}

	// Signed: all four corner products must be exact and in range.
	corners := [4][2]int64{{r.SLo, o.SLo}, {r.SLo, o.SHi}, {r.SHi, o.SLo}, {r.SHi, o.SHi}}
	sLo, sHi := maxSigned(64), minSigned(64)
	ok := true
	for _, c := range corners {
		p, pOK := mulS(c[0], c[1])
		if !pOK {
			ok = false
			break
		}
		sLo = min64s(sLo, p)
		sHi = max64s(sHi, p)
	}
	if ok && sLo >= minSigned(w) && sHi <= maxSigned(w) {
		out.SLo, out.SHi = sLo, sHi
	}
	return out
}

// UDiv is the range transfer for udiv. Division by zero is UB, so the
// divisor is assumed >= 1.
func (r Range) UDiv(o Range) Range {
	w := r.Width
	out := FullRange(w)
	if o.UHi == 0 {
		// Divisor always zero: every execution is UB; any claim is
		// vacuous.
		return ConstRange(w, 0)
	}
	out.ULo = r.ULo / o.UHi
	out.UHi = r.UHi / max64u(1, o.ULo)
	// The quotient fits in the unsigned interval; its signed view is
	// derived from that when it stays in the non-negative half.
	if out.UHi <= uint64(maxSigned(w)) {
		out.SLo, out.SHi = int64(out.ULo), int64(out.UHi)
	}
	return out
}

// URem is the range transfer for urem (divisor assumed nonzero).
func (r Range) URem(o Range) Range {
	w := r.Width
	out := FullRange(w)
	if o.UHi == 0 {
		return ConstRange(w, 0)
	}
	out.ULo = 0
	out.UHi = min64u(r.UHi, o.UHi-1)
	if out.UHi <= uint64(maxSigned(w)) {
		out.SLo, out.SHi = 0, int64(out.UHi)
	}
	return out
}

// Shl is the range transfer for shl by an amount range. Amounts >= width
// make the result poison, so non-poison results come from amounts in
// [o.ULo, min(o.UHi, w-1)].
func (r Range) Shl(o Range, nuw bool) Range {
	w := r.Width
	m := apint.Mask(w)
	out := FullRange(w)
	aMin := min64u(o.ULo, uint64(w-1))
	aMax := min64u(o.UHi, uint64(w-1))
	if r.UHi <= m>>aMax {
		out.ULo, out.UHi = r.ULo<<aMin, r.UHi<<aMax
	} else if nuw {
		if r.ULo <= m>>aMin {
			out.ULo, out.UHi = r.ULo<<aMin, m
		} else {
			out.ULo, out.UHi = m, m
		}
	}
	if out.UHi <= uint64(maxSigned(w)) {
		out.SLo, out.SHi = int64(out.ULo), int64(out.UHi)
	}
	return out
}

// LShr is the range transfer for lshr (amounts clamped to < width, since
// larger ones produce poison).
func (r Range) LShr(o Range) Range {
	w := r.Width
	out := FullRange(w)
	aMin := min64u(o.ULo, uint64(w-1))
	aMax := min64u(o.UHi, uint64(w-1))
	out.ULo = r.ULo >> aMax
	out.UHi = r.UHi >> aMin
	if out.UHi <= uint64(maxSigned(w)) {
		out.SLo, out.SHi = int64(out.ULo), int64(out.UHi)
	}
	return out
}

// AShr is the range transfer for ashr.
func (r Range) AShr(o Range) Range {
	w := r.Width
	out := FullRange(w)
	aMin := min64u(o.ULo, uint64(w-1))
	aMax := min64u(o.UHi, uint64(w-1))
	out.SLo = min64s(r.SLo>>aMin, r.SLo>>aMax)
	out.SHi = max64s(r.SHi>>aMin, r.SHi>>aMax)
	if out.SLo >= 0 {
		out.ULo, out.UHi = uint64(out.SLo), uint64(out.SHi)
	} else if out.SHi < 0 {
		out.ULo = apint.FromInt64(out.SLo, w)
		out.UHi = apint.FromInt64(out.SHi, w)
	}
	return out
}

// ZExt widens the unsigned interval; the result is non-negative in the
// wider type.
func (r Range) ZExt(to int) Range {
	return Range{Width: to, ULo: r.ULo, UHi: r.UHi, SLo: int64(r.ULo), SHi: int64(r.UHi)}
}

// SExt widens the signed interval.
func (r Range) SExt(to int) Range {
	out := FullRange(to)
	out.SLo, out.SHi = r.SLo, r.SHi
	if r.SLo >= 0 {
		out.ULo, out.UHi = uint64(r.SLo), uint64(r.SHi)
	} else if r.SHi < 0 {
		out.ULo = apint.FromInt64(r.SLo, to)
		out.UHi = apint.FromInt64(r.SHi, to)
	}
	return out
}

// Trunc narrows when the interval provably fits the narrow type.
func (r Range) Trunc(to int) Range {
	out := FullRange(to)
	if r.UHi <= apint.Mask(to) {
		out.ULo, out.UHi = r.ULo, r.UHi
	}
	if r.SLo >= minSigned(to) && r.SHi <= maxSigned(to) {
		out.SLo, out.SHi = r.SLo, r.SHi
	}
	// The two views must stay mutually consistent: recompute the signed
	// view from the unsigned one if only one side transferred.
	if out.ULo > out.UHi || out.SLo > out.SHi {
		return FullRange(to)
	}
	return out
}

// SMax/SMin/UMax/UMin are the pick-one-operand transfers: the hull of
// both inputs, with the ordered dimension tightened.
func (r Range) SMax(o Range) Range {
	out := r.Union(o)
	out.SLo = max64s(r.SLo, o.SLo)
	return out
}

func (r Range) SMin(o Range) Range {
	out := r.Union(o)
	out.SHi = min64s(r.SHi, o.SHi)
	return out
}

func (r Range) UMax(o Range) Range {
	out := r.Union(o)
	out.ULo = max64u(r.ULo, o.ULo)
	return out
}

func (r Range) UMin(o Range) Range {
	out := r.Union(o)
	out.UHi = min64u(r.UHi, o.UHi)
	return out
}

// Abs is the transfer for llvm.abs. If INT_MIN is possible and not
// flagged as poison, the wrapped result escapes the simple bound, so the
// refinement applies only when SLo > INT_MIN or the flag makes that case
// vacuous.
func (r Range) Abs(intMinPoison bool) Range {
	w := r.Width
	out := FullRange(w)
	if r.SLo > minSigned(w) || intMinPoison {
		lo := max64s(r.SLo, minSigned(w)+1)
		hi := max64s(-lo, r.SHi)
		if r.SLo >= 0 {
			out.SLo = r.SLo
		} else {
			out.SLo = 0
		}
		out.SHi = max64s(out.SLo, hi)
		out.ULo = uint64(out.SLo)
		out.UHi = uint64(out.SHi)
	}
	return out
}

// SatAdd/SatSub are the saturating-arithmetic transfers.
func (r Range) UAddSat(o Range) Range {
	w := r.Width
	m := apint.Mask(w)
	satU := func(a, b uint64) uint64 {
		s, carry := bits.Add64(a, b, 0)
		if carry != 0 || s > m {
			return m
		}
		return s
	}
	out := FullRange(w)
	out.ULo, out.UHi = satU(r.ULo, o.ULo), satU(r.UHi, o.UHi)
	if out.UHi <= uint64(maxSigned(w)) {
		out.SLo, out.SHi = int64(out.ULo), int64(out.UHi)
	}
	return out
}

func (r Range) USubSat(o Range) Range {
	w := r.Width
	satU := func(a, b uint64) uint64 {
		if a <= b {
			return 0
		}
		return a - b
	}
	out := FullRange(w)
	out.ULo, out.UHi = satU(r.ULo, o.UHi), satU(r.UHi, o.ULo)
	if out.UHi <= uint64(maxSigned(w)) {
		out.SLo, out.SHi = int64(out.ULo), int64(out.UHi)
	}
	return out
}

func (r Range) SAddSat(o Range) Range {
	w := r.Width
	satS := func(a, b int64) int64 {
		s, ok := addS(a, b)
		if !ok {
			if a > 0 {
				return maxSigned(w)
			}
			return minSigned(w)
		}
		return max64s(minSigned(w), min64s(maxSigned(w), s))
	}
	out := FullRange(w)
	out.SLo, out.SHi = satS(r.SLo, o.SLo), satS(r.SHi, o.SHi)
	return out
}

func (r Range) SSubSat(o Range) Range {
	w := r.Width
	satS := func(a, b int64) int64 {
		s, ok := subS(a, b)
		if !ok {
			if b < 0 {
				return maxSigned(w)
			}
			return minSigned(w)
		}
		return max64s(minSigned(w), min64s(maxSigned(w), s))
	}
	out := FullRange(w)
	out.SLo, out.SHi = satS(r.SLo, o.SHi), satS(r.SHi, o.SLo)
	return out
}

// CountRange is the [0, w] result range of ctpop/ctlz/cttz.
func CountRange(w int) Range {
	out := FullRange(w)
	out.ULo, out.UHi = 0, uint64(w)
	if out.UHi <= uint64(maxSigned(w)) {
		out.SLo, out.SHi = 0, int64(w)
	} else {
		// Degenerate tiny widths (w=1: count can be 0 or 1 == -1).
		out.SLo, out.SHi = minSigned(w), maxSigned(w)
	}
	return out
}

// rangeFromPred is the region a value must lie in for `v pred C` to hold;
// ok is false when the predicate gives no non-wrapped interval (ne).
func rangeFromPred(p ir.Pred, c uint64, w int) (Range, bool) {
	m := apint.Mask(w)
	c &= m
	cs := apint.ToInt64(c, w)
	out := FullRange(w)
	switch p {
	case ir.EQ:
		return ConstRange(w, c), true
	case ir.NE:
		return out, false
	case ir.ULT:
		if c == 0 {
			return ConstRange(w, 0), true // never true: vacuous
		}
		out.ULo, out.UHi = 0, c-1
	case ir.ULE:
		out.ULo, out.UHi = 0, c
	case ir.UGT:
		if c == m {
			return ConstRange(w, m), true
		}
		out.ULo, out.UHi = c+1, m
	case ir.UGE:
		out.ULo, out.UHi = c, m
	case ir.SLT:
		if cs == minSigned(w) {
			return ConstRange(w, c), true
		}
		out.SLo, out.SHi = minSigned(w), cs-1
	case ir.SLE:
		out.SLo, out.SHi = minSigned(w), cs
	case ir.SGT:
		if cs == maxSigned(w) {
			return ConstRange(w, c), true
		}
		out.SLo, out.SHi = cs+1, maxSigned(w)
	case ir.SGE:
		out.SLo, out.SHi = cs, maxSigned(w)
	default:
		return out, false
	}
	return out, true
}

// DecideICmp evaluates `a pred b` from the two ranges, returning
// (result, true) when the ranges prove it one way.
func DecideICmp(p ir.Pred, a, b Range) (bool, bool) {
	switch p {
	case ir.EQ:
		if a.IsConst() && b.IsConst() {
			return a.Const() == b.Const(), true
		}
		if a.ULo > b.UHi || a.UHi < b.ULo || a.SLo > b.SHi || a.SHi < b.SLo {
			return false, true
		}
	case ir.NE:
		if a.IsConst() && b.IsConst() {
			return a.Const() != b.Const(), true
		}
		if a.ULo > b.UHi || a.UHi < b.ULo || a.SLo > b.SHi || a.SHi < b.SLo {
			return true, true
		}
	case ir.ULT:
		if a.UHi < b.ULo {
			return true, true
		}
		if a.ULo >= b.UHi {
			return false, true
		}
	case ir.ULE:
		if a.UHi <= b.ULo {
			return true, true
		}
		if a.ULo > b.UHi {
			return false, true
		}
	case ir.UGT:
		return DecideICmp(ir.ULT, b, a)
	case ir.UGE:
		return DecideICmp(ir.ULE, b, a)
	case ir.SLT:
		if a.SHi < b.SLo {
			return true, true
		}
		if a.SLo >= b.SHi {
			return false, true
		}
	case ir.SLE:
		if a.SHi <= b.SLo {
			return true, true
		}
		if a.SLo > b.SHi {
			return false, true
		}
	case ir.SGT:
		return DecideICmp(ir.SLT, b, a)
	case ir.SGE:
		return DecideICmp(ir.SLE, b, a)
	}
	return false, false
}
