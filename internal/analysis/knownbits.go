package analysis

import (
	"fmt"
	"math/bits"

	"repro/internal/apint"
)

// KnownBits records, for an integer value of a given width, which bits
// are known to hold 0 (Zeros) and which are known to hold 1 (Ones).
// The lattice element claims: every NON-POISON runtime value v of the
// instruction satisfies v&Zeros == 0 and v&Ones == Ones. Poison values
// make every claim vacuous, which is exactly what lets nuw/nsw/exact
// flags sharpen facts soundly — a flag violation produces poison, so the
// sharpened claim never has to hold for it.
//
// Zeros&Ones == 0 always; Zeros == Ones == 0 is the "unknown" top.
type KnownBits struct {
	Width int
	Zeros uint64
	Ones  uint64
}

// Unknown returns the no-information element at width w.
func Unknown(w int) KnownBits { return KnownBits{Width: w} }

// lowMask is apint.Mask extended to the degenerate counts that bit
// arithmetic produces: n <= 0 gives 0, n >= 64 gives all ones.
func lowMask(n int) uint64 {
	if n <= 0 {
		return 0
	}
	if n >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(n)) - 1
}

// FromConst returns the all-bits-known element for constant v at width w.
func FromConst(w int, v uint64) KnownBits {
	v &= apint.Mask(w)
	return KnownBits{Width: w, Zeros: ^v & apint.Mask(w), Ones: v}
}

func (k KnownBits) String() string {
	return fmt.Sprintf("i%d{zeros=%#x ones=%#x}", k.Width, k.Zeros, k.Ones)
}

// IsConst reports whether every bit is known; Const returns the value.
func (k KnownBits) IsConst() bool { return k.Zeros|k.Ones == apint.Mask(k.Width) }
func (k KnownBits) Const() uint64 { return k.Ones }

// UMin and UMax are the tightest unsigned bounds implied by the masks.
func (k KnownBits) UMin() uint64 { return k.Ones }
func (k KnownBits) UMax() uint64 { return ^k.Zeros & apint.Mask(k.Width) }

// SignKnownZero / SignKnownOne report knowledge of the sign bit.
func (k KnownBits) SignKnownZero() bool { return k.Zeros>>(uint(k.Width)-1)&1 == 1 }
func (k KnownBits) SignKnownOne() bool  { return k.Ones>>(uint(k.Width)-1)&1 == 1 }

// Consistent reports whether the concrete value v satisfies the claim.
func (k KnownBits) Consistent(v uint64) bool {
	v &= apint.Mask(k.Width)
	return v&k.Zeros == 0 && v&k.Ones == k.Ones
}

// Union is the lattice meet: bits known only if known equal in both —
// sound for any instruction whose result always equals one of the two
// inputs (select, phi, min/max).
func (k KnownBits) Union(o KnownBits) KnownBits {
	return KnownBits{Width: k.Width, Zeros: k.Zeros & o.Zeros, Ones: k.Ones & o.Ones}
}

// Not is bitwise complement.
func (k KnownBits) Not() KnownBits {
	return KnownBits{Width: k.Width, Zeros: k.Ones, Ones: k.Zeros}
}

// And, Or, Xor are the bitwise transfer functions.
func (k KnownBits) And(o KnownBits) KnownBits {
	return KnownBits{Width: k.Width, Zeros: k.Zeros | o.Zeros, Ones: k.Ones & o.Ones}
}

func (k KnownBits) Or(o KnownBits) KnownBits {
	return KnownBits{Width: k.Width, Zeros: k.Zeros & o.Zeros, Ones: k.Ones | o.Ones}
}

func (k KnownBits) Xor(o KnownBits) KnownBits {
	return KnownBits{
		Width: k.Width,
		Zeros: (k.Zeros & o.Zeros) | (k.Ones & o.Ones),
		Ones:  (k.Zeros & o.Ones) | (k.Ones & o.Zeros),
	}
}

// addCarry is the add transfer with a known-or-unknown carry-in
// (carryZero: carry-in known 0; carryOne: carry-in known 1). A result bit
// is known when the operand bits and the incoming carry are known; the
// carry into each position is known when the minimal-world and
// maximal-world sums agree with it (the carry chain is monotone in the
// operand values, so agreement at the extremes pins it everywhere).
func addCarry(a, b KnownBits, carryZero, carryOne bool) KnownBits {
	w := a.Width
	m := apint.Mask(w)
	var cinMax, cinMin uint64
	if !carryZero {
		cinMax = 1
	}
	if carryOne {
		cinMin = 1
	}
	sumMax := (a.UMax() + b.UMax() + cinMax) & m
	sumMin := (a.UMin() + b.UMin() + cinMin) & m
	carryKnownZero := ^(sumMax ^ a.Zeros ^ b.Zeros) & m
	carryKnownOne := (sumMin ^ a.Ones ^ b.Ones) & m
	known := (a.Zeros | a.Ones) & (b.Zeros | b.Ones) & (carryKnownZero | carryKnownOne)
	return KnownBits{Width: w, Zeros: ^sumMax & m & known, Ones: sumMin & known}
}

// Add and Sub transfer functions (a-b == a + ~b + 1).
func (k KnownBits) Add(o KnownBits) KnownBits { return addCarry(k, o, true, false) }
func (k KnownBits) Sub(o KnownBits) KnownBits { return addCarry(k, o.Not(), false, true) }

// Mul keeps the provable trailing zeros (a multiple of 2^i times a
// multiple of 2^j is a multiple of 2^(i+j), even mod 2^w) and, when the
// maximal product cannot wrap, the leading zeros of its bound.
func (k KnownBits) Mul(o KnownBits) KnownBits {
	w := k.Width
	m := apint.Mask(w)
	if k.IsConst() && o.IsConst() {
		return FromConst(w, apint.Mul(k.Const(), o.Const(), w))
	}
	tz := bits.TrailingZeros64(^k.Zeros) + bits.TrailingZeros64(^o.Zeros)
	if tz >= w {
		return FromConst(w, 0)
	}
	out := KnownBits{Width: w, Zeros: lowMask(tz)}
	hi, lo := bits.Mul64(k.UMax(), o.UMax())
	if hi == 0 && lo <= m {
		out.Zeros |= ^lowMask(bits.Len64(lo)) & m
	}
	return out
}

// UDiv bounds the quotient by UMax(a)/max(1,UMin(b)); division by zero is
// UB (the value never exists), so the divisor may be assumed nonzero.
func (k KnownBits) UDiv(o KnownBits) KnownBits {
	w := k.Width
	div := o.UMin()
	if div == 0 {
		div = 1
	}
	max := k.UMax() / div
	return KnownBits{Width: w, Zeros: ^lowMask(bits.Len64(max)) & apint.Mask(w)}
}

// URem: the remainder is < the divisor and <= the dividend; a fully known
// power-of-two divisor turns it into a bit mask.
func (k KnownBits) URem(o KnownBits) KnownBits {
	w := k.Width
	if o.IsConst() && apint.IsPowerOfTwo(o.Const()) {
		return k.And(FromConst(w, o.Const()-1))
	}
	max := k.UMax()
	if bm := o.UMax(); bm > 0 && bm-1 < max {
		max = bm - 1
	}
	return KnownBits{Width: w, Zeros: ^lowMask(bits.Len64(max)) & apint.Mask(w)}
}

// ShlConst, LShrConst, AShrConst are the shift transfers for a known
// in-range amount c (0 <= c < width). Out-of-range shifts produce poison,
// so callers must not use these for them.
func (k KnownBits) ShlConst(c int) KnownBits {
	m := apint.Mask(k.Width)
	return KnownBits{
		Width: k.Width,
		Zeros: ((k.Zeros << uint(c)) | lowMask(c)) & m,
		Ones:  (k.Ones << uint(c)) & m,
	}
}

func (k KnownBits) LShrConst(c int) KnownBits {
	m := apint.Mask(k.Width)
	fill := ^(m >> uint(c)) & m
	return KnownBits{Width: k.Width, Zeros: (k.Zeros >> uint(c)) | fill, Ones: k.Ones >> uint(c)}
}

func (k KnownBits) AShrConst(c int) KnownBits {
	m := apint.Mask(k.Width)
	fill := ^(m >> uint(c)) & m
	out := KnownBits{Width: k.Width, Zeros: k.Zeros >> uint(c), Ones: k.Ones >> uint(c)}
	if k.SignKnownZero() {
		out.Zeros |= fill
	} else if k.SignKnownOne() {
		out.Ones |= fill
	} else {
		out.Zeros &^= fill
		out.Ones &^= fill
	}
	return out
}

// ZExtTo, SExtTo, TruncTo are the cast transfers.
func (k KnownBits) ZExtTo(w int) KnownBits {
	ext := apint.Mask(w) &^ apint.Mask(k.Width)
	return KnownBits{Width: w, Zeros: k.Zeros | ext, Ones: k.Ones}
}

func (k KnownBits) SExtTo(w int) KnownBits {
	ext := apint.Mask(w) &^ apint.Mask(k.Width)
	out := KnownBits{Width: w, Zeros: k.Zeros, Ones: k.Ones}
	if k.SignKnownZero() {
		out.Zeros |= ext
	} else if k.SignKnownOne() {
		out.Ones |= ext
	}
	return out
}

func (k KnownBits) TruncTo(w int) KnownBits {
	m := apint.Mask(w)
	return KnownBits{Width: w, Zeros: k.Zeros & m, Ones: k.Ones & m}
}

// Bswap permutes whole bytes of the masks (widths that are multiples of
// 16, per ir.BswapSupports).
func (k KnownBits) Bswap() KnownBits {
	n := k.Width / 8
	out := KnownBits{Width: k.Width}
	for i := 0; i < n; i++ {
		src := uint((n - 1 - i) * 8)
		dst := uint(i * 8)
		out.Zeros |= (k.Zeros >> src & 0xff) << dst
		out.Ones |= (k.Ones >> src & 0xff) << dst
	}
	return out
}

// CountBound is the transfer for ctpop/ctlz/cttz: the result is at most
// the width, so every bit above bits.Len(width) is zero.
func CountBound(w int) KnownBits {
	return KnownBits{Width: w, Zeros: ^lowMask(bits.Len64(uint64(w))) & apint.Mask(w)}
}
