package analysis

import (
	"repro/internal/ir"
)

// maxFactsDepth bounds recursion through operand chains. Results are
// memoized, so the bound only matters for pathological chain depth (it
// caps the Go stack, not total work, which is O(instructions)).
const maxFactsDepth = 64

// guard is a fact of the form `pred(v, c)` that holds whenever control is
// in a particular block: either a dominating icmp-guarded CFG edge or a
// dominating llvm.assume established it.
type guard struct {
	v    ir.Value
	pred ir.Pred
	c    uint64
}

// Facts is the cached dataflow-fact provider for one function: known
// bits, value ranges (LVI-lite: refined by dominating guarded edges and
// assumes), and demanded bits, each computed lazily and memoized.
//
// Invalidation contract: any mutation of the function (instructions
// added, removed, reordered, operands or flags changed, CFG edits) makes
// every cached fact stale; the mutator MUST call Invalidate before the
// next query. Queries after a mutation without Invalidate may return
// unsound facts. Passes in internal/opt invalidate after every applied
// rewrite.
type Facts struct {
	F *ir.Function

	dom       *DomTree
	preds     map[*ir.Block][]*ir.Block
	known     map[ir.Value]KnownBits
	ranges    map[ir.Value]Range
	inflightK map[ir.Value]bool
	inflightR map[ir.Value]bool
	guards    map[*ir.Block][]guard
	demanded  map[*ir.Instr]uint64
	hasDem    bool

	// Poison-lattice memos (poison.go).
	neverP     map[*ir.Instr]bool
	alwaysP    map[*ir.Instr]bool
	inflightNP map[*ir.Instr]bool
	inflightAP map[*ir.Instr]bool
}

// NewFacts returns an empty fact cache for f. Nothing is computed until
// the first query.
func NewFacts(f *ir.Function) *Facts {
	fa := &Facts{F: f}
	fa.reset()
	return fa
}

func (fa *Facts) reset() {
	fa.dom = nil
	fa.preds = nil
	fa.known = make(map[ir.Value]KnownBits)
	fa.ranges = make(map[ir.Value]Range)
	fa.inflightK = make(map[ir.Value]bool)
	fa.inflightR = make(map[ir.Value]bool)
	fa.guards = make(map[*ir.Block][]guard)
	fa.demanded = nil
	fa.hasDem = false
	fa.neverP = make(map[*ir.Instr]bool)
	fa.alwaysP = make(map[*ir.Instr]bool)
	fa.inflightNP = make(map[*ir.Instr]bool)
	fa.inflightAP = make(map[*ir.Instr]bool)
}

// Invalidate drops every cached fact. Must be called after any mutation
// of the function.
func (fa *Facts) Invalidate() { fa.reset() }

// Dom returns the (cached) dominator tree.
func (fa *Facts) Dom() *DomTree {
	if fa.dom == nil {
		fa.dom = BuildDomTree(fa.F)
	}
	return fa.dom
}

func (fa *Facts) predMap() map[*ir.Block][]*ir.Block {
	if fa.preds == nil {
		fa.preds = make(map[*ir.Block][]*ir.Block, len(fa.F.Blocks))
		for _, b := range fa.F.Blocks {
			for _, s := range b.Succs() {
				fa.preds[s] = append(fa.preds[s], b)
			}
		}
	}
	return fa.preds
}

// Known returns the known-bits fact for v. For non-integer values the
// zero KnownBits (Width 0) is returned; callers check Width.
func (fa *Facts) Known(v ir.Value) KnownBits {
	w, ok := ir.IsInt(v.Type())
	if !ok {
		return KnownBits{}
	}
	return fa.knownRec(v, w, 0)
}

func (fa *Facts) knownRec(v ir.Value, w, depth int) KnownBits {
	switch x := v.(type) {
	case *ir.Const:
		return FromConst(w, x.Val)
	case *ir.Instr:
		if k, ok := fa.known[x]; ok {
			return k
		}
		if depth > maxFactsDepth || fa.inflightK[x] {
			return Unknown(w)
		}
		fa.inflightK[x] = true
		k := fa.computeKnown(x, w, depth)
		delete(fa.inflightK, x)
		fa.known[x] = k
		return k
	default:
		// Params, poison, pointers: nothing is known.
		return Unknown(w)
	}
}

func (fa *Facts) computeKnown(in *ir.Instr, w, depth int) KnownBits {
	arg := func(i int) KnownBits {
		a := in.Args[i]
		aw, ok := ir.IsInt(a.Type())
		if !ok {
			return KnownBits{}
		}
		return fa.knownRec(a, aw, depth+1)
	}
	switch in.Op {
	case ir.OpAdd:
		return arg(0).Add(arg(1))
	case ir.OpSub:
		return arg(0).Sub(arg(1))
	case ir.OpMul:
		return arg(0).Mul(arg(1))
	case ir.OpUDiv:
		return arg(0).UDiv(arg(1))
	case ir.OpURem:
		return arg(0).URem(arg(1))
	case ir.OpSDiv:
		// Both operands known non-negative: behaves as udiv.
		if a, b := arg(0), arg(1); a.SignKnownZero() && b.SignKnownZero() {
			return a.UDiv(b)
		}
		return Unknown(w)
	case ir.OpSRem:
		if a, b := arg(0), arg(1); a.SignKnownZero() && b.SignKnownZero() {
			return a.URem(b)
		}
		return Unknown(w)
	case ir.OpAnd:
		return arg(0).And(arg(1))
	case ir.OpOr:
		return arg(0).Or(arg(1))
	case ir.OpXor:
		return arg(0).Xor(arg(1))
	case ir.OpShl, ir.OpLShr, ir.OpAShr:
		b := arg(1)
		if !b.IsConst() {
			return Unknown(w)
		}
		c := b.Const()
		if c >= uint64(w) {
			// Always poison: any claim is vacuous.
			return Unknown(w)
		}
		switch in.Op {
		case ir.OpShl:
			return arg(0).ShlConst(int(c))
		case ir.OpLShr:
			return arg(0).LShrConst(int(c))
		default:
			return arg(0).AShrConst(int(c))
		}
	case ir.OpTrunc:
		return arg(0).TruncTo(w)
	case ir.OpZExt:
		return arg(0).ZExtTo(w)
	case ir.OpSExt:
		return arg(0).SExtTo(w)
	case ir.OpSelect:
		cw, ok := ir.IsInt(in.Args[0].Type())
		if ok {
			if c := fa.knownRec(in.Args[0], cw, depth+1); c.IsConst() {
				if c.Const() != 0 {
					return arg(1)
				}
				return arg(2)
			}
		}
		return arg(1).Union(arg(2))
	case ir.OpPhi:
		out := KnownBits{}
		for i := range in.Args {
			k := fa.knownRec(in.Args[i], w, depth+1)
			if out.Width == 0 {
				out = k
			} else {
				out = out.Union(k)
			}
		}
		if out.Width == 0 {
			return Unknown(w)
		}
		return out
	case ir.OpFreeze:
		// Freeze of poison takes arbitrary bits, so operand facts only
		// transfer when the operand can never be poison.
		if c, ok := in.Args[0].(*ir.Const); ok {
			return FromConst(w, c.Val)
		}
		return Unknown(w)
	case ir.OpICmp:
		aw, ok := ir.IsInt(in.Args[0].Type())
		if !ok {
			return Unknown(w)
		}
		ka := fa.knownRec(in.Args[0], aw, depth+1)
		kb := fa.knownRec(in.Args[1], aw, depth+1)
		// A known-bit disagreement decides eq/ne even when the ranges
		// overlap.
		if conflict := (ka.Ones & kb.Zeros) | (ka.Zeros & kb.Ones); conflict != 0 {
			if in.Pred == ir.EQ {
				return FromConst(1, 0)
			}
			if in.Pred == ir.NE {
				return FromConst(1, 1)
			}
		}
		ra := fa.rangeRec(in.Args[0], aw, depth+1)
		rb := fa.rangeRec(in.Args[1], aw, depth+1)
		if res, ok := DecideICmp(in.Pred, ra, rb); ok {
			if res {
				return FromConst(1, 1)
			}
			return FromConst(1, 0)
		}
		return Unknown(1)
	case ir.OpCall:
		k, ok := in.IsIntrinsicCall()
		if !ok {
			return Unknown(w)
		}
		switch k {
		case ir.IntrinsicSMax, ir.IntrinsicSMin, ir.IntrinsicUMax, ir.IntrinsicUMin:
			return arg(0).Union(arg(1))
		case ir.IntrinsicAbs:
			if a := arg(0); a.SignKnownZero() {
				return a
			}
			return Unknown(w)
		case ir.IntrinsicBswap:
			return arg(0).Bswap()
		case ir.IntrinsicCtpop, ir.IntrinsicCtlz, ir.IntrinsicCttz:
			return CountBound(w)
		default:
			return Unknown(w)
		}
	default:
		return Unknown(w)
	}
}

// RangeOf returns the range fact for v as observed by uses in block at.
// With at == nil the context-free range is returned; with a block, facts
// from dominating guarded edges and assume intrinsics are intersected in.
// For non-integer values the zero Range (Width 0) is returned.
func (fa *Facts) RangeOf(v ir.Value, at *ir.Block) Range {
	w, ok := ir.IsInt(v.Type())
	if !ok {
		return Range{}
	}
	r := fa.rangeRec(v, w, 0)
	if at != nil {
		for _, g := range fa.guardsFor(at) {
			if g.v == v {
				if gr, ok := rangeFromPred(g.pred, g.c, w); ok {
					r = r.Intersect(gr)
				}
			}
		}
	}
	return r
}

func (fa *Facts) rangeRec(v ir.Value, w, depth int) Range {
	switch x := v.(type) {
	case *ir.Const:
		return ConstRange(w, x.Val)
	case *ir.Instr:
		if r, ok := fa.ranges[x]; ok {
			return r
		}
		if depth > maxFactsDepth || fa.inflightR[x] {
			return FullRange(w)
		}
		fa.inflightR[x] = true
		r := fa.computeRange(x, w, depth)
		delete(fa.inflightR, x)
		fa.ranges[x] = r
		return r
	default:
		return FullRange(w)
	}
}

func (fa *Facts) computeRange(in *ir.Instr, w, depth int) Range {
	arg := func(i int) Range {
		a := in.Args[i]
		aw, ok := ir.IsInt(a.Type())
		if !ok {
			return Range{}
		}
		return fa.rangeRec(a, aw, depth+1)
	}
	var r Range
	switch in.Op {
	case ir.OpAdd:
		r = arg(0).Add(arg(1), in.Nuw, in.Nsw)
	case ir.OpSub:
		r = arg(0).Sub(arg(1), in.Nuw, in.Nsw)
	case ir.OpMul:
		r = arg(0).Mul(arg(1), in.Nuw)
	case ir.OpUDiv:
		r = arg(0).UDiv(arg(1))
	case ir.OpURem:
		r = arg(0).URem(arg(1))
	case ir.OpShl:
		r = arg(0).Shl(arg(1), in.Nuw)
	case ir.OpLShr:
		r = arg(0).LShr(arg(1))
	case ir.OpAShr:
		r = arg(0).AShr(arg(1))
	case ir.OpZExt:
		r = arg(0).ZExt(w)
	case ir.OpSExt:
		r = arg(0).SExt(w)
	case ir.OpTrunc:
		r = arg(0).Trunc(w)
	case ir.OpICmp:
		r = BoolRange()
	case ir.OpSelect:
		r = arg(1).Union(arg(2))
	case ir.OpPhi:
		got := false
		for i := range in.Args {
			ri := fa.rangeRec(in.Args[i], w, depth+1)
			if !got {
				r, got = ri, true
			} else {
				r = r.Union(ri)
			}
		}
		if !got {
			r = FullRange(w)
		}
	case ir.OpFreeze:
		if c, ok := in.Args[0].(*ir.Const); ok {
			r = ConstRange(w, c.Val)
		} else {
			r = FullRange(w)
		}
	case ir.OpCall:
		k, ok := in.IsIntrinsicCall()
		if !ok {
			return FullRange(w).Intersect(FromKnown(fa.knownRec(in, w, depth)))
		}
		switch k {
		case ir.IntrinsicSMax:
			r = arg(0).SMax(arg(1))
		case ir.IntrinsicSMin:
			r = arg(0).SMin(arg(1))
		case ir.IntrinsicUMax:
			r = arg(0).UMax(arg(1))
		case ir.IntrinsicUMin:
			r = arg(0).UMin(arg(1))
		case ir.IntrinsicAbs:
			minPoison := false
			if c, ok := in.Args[1].(*ir.Const); ok {
				minPoison = c.Val != 0
			}
			r = arg(0).Abs(minPoison)
		case ir.IntrinsicUAddSat:
			r = arg(0).UAddSat(arg(1))
		case ir.IntrinsicSAddSat:
			r = arg(0).SAddSat(arg(1))
		case ir.IntrinsicUSubSat:
			r = arg(0).USubSat(arg(1))
		case ir.IntrinsicSSubSat:
			r = arg(0).SSubSat(arg(1))
		case ir.IntrinsicCtpop, ir.IntrinsicCtlz, ir.IntrinsicCttz:
			r = CountRange(w)
		default:
			r = FullRange(w)
		}
	default:
		r = FullRange(w)
	}
	// Bit-level knowledge always intersects in (it is claimed for the
	// same non-poison executions).
	return r.Intersect(FromKnown(fa.knownRec(in, w, depth)))
}

// guardsFor collects the guards that hold whenever control is in b: for
// each block d on b's dominator chain (including b itself), the
// icmp-against-constant conditions of assume calls in d, and the branch
// condition of the edge into d when d has a unique predecessor ending in
// a conditional branch with distinct targets.
func (fa *Facts) guardsFor(b *ir.Block) []guard {
	if gs, ok := fa.guards[b]; ok {
		return gs
	}
	dom := fa.Dom()
	preds := fa.predMap()
	gs := []guard{}
	for d := b; d != nil; d = dom.IDom(d) {
		for _, in := range d.Instrs {
			if in.Op == ir.OpCall {
				if k, ok := in.IsIntrinsicCall(); ok && k == ir.IntrinsicAssume {
					gs = appendCondGuards(gs, in.Args[0], true)
				}
			}
		}
		if ps := preds[d]; len(ps) == 1 {
			t := ps[0].Term()
			if t != nil && t.Op == ir.OpCondBr && t.Targets[0] != t.Targets[1] {
				if t.Targets[0] == d {
					gs = appendCondGuards(gs, t.Args[0], true)
				} else if t.Targets[1] == d {
					gs = appendCondGuards(gs, t.Args[0], false)
				}
			}
		}
	}
	fa.guards[b] = gs
	return gs
}

// appendCondGuards records the constraint of cond being taken (or not)
// when cond is an icmp against a constant.
func appendCondGuards(gs []guard, cond ir.Value, taken bool) []guard {
	ic, ok := cond.(*ir.Instr)
	if !ok || ic.Op != ir.OpICmp {
		return gs
	}
	pred := ic.Pred
	var v ir.Value
	var c uint64
	if rc, ok := ic.Args[1].(*ir.Const); ok {
		v, c = ic.Args[0], rc.Val
	} else if lc, ok := ic.Args[0].(*ir.Const); ok {
		v, c, pred = ic.Args[1], lc.Val, pred.Swapped()
	} else {
		return gs
	}
	if !taken {
		pred = pred.Inverse()
	}
	return append(gs, guard{v: v, pred: pred, c: c})
}
