package analysis

import (
	"fmt"

	"repro/internal/ir"
)

// Overlay is the two-level data structure from paper §III-B: the first
// level holds information specific to the current mutant, and the second
// level is the immutable FuncInfo computed for the original function.
// Queries consult the mutant-specific level first and fall back to the
// original. Because none of the mutation operators change the CFG's block
// structure, the original's block-level dominator tree remains valid for
// every mutant; only intra-block instruction positions (which the overlay
// reads directly from the mutant) and derived caches (shuffle ranges,
// constant sites) can go stale and be recomputed lazily.
type Overlay struct {
	Orig   *FuncInfo
	Mutant *ir.Function

	// blockOf maps each mutant block to its original counterpart (by
	// position; mutation preserves block count and order).
	blockOf map[*ir.Block]*ir.Block

	// Mutant-level lazy caches.
	shuffleRanges []ShuffleRange
	shuffleValid  bool
	constSites    []ConstSite
	constsValid   bool
}

// NewOverlay pairs a preprocessed original with a freshly cloned mutant.
// It panics if the block structures do not correspond, since that would
// silently invalidate every dominance answer.
func NewOverlay(orig *FuncInfo, mutant *ir.Function) *Overlay {
	if len(orig.F.Blocks) != len(mutant.Blocks) {
		panic(fmt.Sprintf("analysis: overlay block count mismatch (%d vs %d)",
			len(orig.F.Blocks), len(mutant.Blocks)))
	}
	o := &Overlay{
		Orig:    orig,
		Mutant:  mutant,
		blockOf: make(map[*ir.Block]*ir.Block, len(mutant.Blocks)),
	}
	for i, b := range mutant.Blocks {
		o.blockOf[b] = orig.F.Blocks[i]
	}
	return o
}

// Invalidate discards the mutant-level caches; call after any structural
// edit to the mutant.
func (o *Overlay) Invalidate() {
	o.shuffleValid = false
	o.constsValid = false
}

// BlockDominates reports whether mutant block a dominates mutant block b,
// answered from the original's dominator tree (level two of the cache).
func (o *Overlay) BlockDominates(a, b *ir.Block) bool {
	oa, ok1 := o.blockOf[a]
	ob, ok2 := o.blockOf[b]
	if !ok1 || !ok2 {
		panic("analysis: BlockDominates on foreign block")
	}
	return o.Orig.Dom.Dominates(oa, ob)
}

// Reachable reports whether the mutant block is reachable from entry.
func (o *Overlay) Reachable(b *ir.Block) bool {
	ob, ok := o.blockOf[b]
	if !ok {
		panic("analysis: Reachable on foreign block")
	}
	return o.Orig.Dom.Reachable(ob)
}

// ValueDominatesPoint reports whether value v is available (dominating) at
// the program point just before instruction index idx of mutant block b.
// Constants and parameters are available everywhere; instruction results
// are available if defined earlier in the same block or in a strictly
// dominating block.
func (o *Overlay) ValueDominatesPoint(v ir.Value, b *ir.Block, idx int) bool {
	def, ok := v.(*ir.Instr)
	if !ok {
		return true // Const, Poison, NullPtr, Param
	}
	db := def.Parent()
	if db == nil {
		return false // detached instruction
	}
	if db == b {
		di := b.IndexOf(def)
		return di >= 0 && di < idx
	}
	oa, ok1 := o.blockOf[db]
	ob, ok2 := o.blockOf[b]
	if !ok1 || !ok2 {
		return false
	}
	return o.Orig.Dom.StrictlyDominates(oa, ob)
}

// DominatingValues enumerates every SSA value with the requested type that
// dominates the point just before index idx of block b: the function's
// parameters plus all earlier instruction results. This is the enumeration
// behind the paper's central primitive, "for a given program point,
// randomly generate a dominating SSA value with compatible type" (§IV-F).
func (o *Overlay) DominatingValues(b *ir.Block, idx int, ty ir.Type) []ir.Value {
	var out []ir.Value
	for _, p := range o.Mutant.Params {
		if ir.TypesEqual(p.Ty, ty) {
			out = append(out, p)
		}
	}
	for _, mb := range o.Mutant.Blocks {
		if mb == b {
			limit := idx
			if limit > len(mb.Instrs) {
				limit = len(mb.Instrs)
			}
			for _, in := range mb.Instrs[:limit] {
				if !ir.IsVoid(in.Ty) && ir.TypesEqual(in.Ty, ty) {
					out = append(out, in)
				}
			}
			continue
		}
		if o.BlockDominates(mb, b) && mb != b {
			for _, in := range mb.Instrs {
				if !ir.IsVoid(in.Ty) && ir.TypesEqual(in.Ty, ty) {
					out = append(out, in)
				}
			}
		}
	}
	return out
}

// ShuffleRanges returns the mutant's shufflable ranges, recomputing them
// only when a mutation has invalidated the cache. On a fresh mutant the
// ranges are identical to the preprocessed original's, so the common case
// (shuffle is the first mutation applied) costs nothing.
func (o *Overlay) ShuffleRanges() []ShuffleRange {
	if !o.shuffleValid {
		o.shuffleRanges = nil
		for _, b := range o.Mutant.Blocks {
			o.shuffleRanges = append(o.shuffleRanges, ComputeShuffleRanges(b)...)
		}
		o.shuffleValid = true
	}
	return o.shuffleRanges
}

// ConstSites returns the literal-constant operand sites of the mutant,
// lazily recomputed after invalidation.
func (o *Overlay) ConstSites() []ConstSite {
	if !o.constsValid {
		o.constSites = ScanConstants(o.Mutant)
		o.constsValid = true
	}
	return o.constSites
}
