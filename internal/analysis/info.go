package analysis

import (
	"repro/internal/ir"
)

// ShuffleRange identifies a maximal run of consecutive instructions inside
// one block that have no mutual dependencies and no ordering-relevant side
// effects, so any permutation of them preserves SSA validity (paper
// §IV-D). Indices are [Start, End) positions within Block.Instrs.
type ShuffleRange struct {
	Block *ir.Block
	Start int
	End   int
}

// Len returns the number of instructions in the range.
func (r ShuffleRange) Len() int { return r.End - r.Start }

// ConstSite locates a literal integer constant operand: the instruction
// and the operand index holding the *ir.Const. Collected during
// preprocessing so the constant-replacement mutation can pick a target
// without rescanning (paper §III-A).
type ConstSite struct {
	Instr *ir.Instr
	Arg   int
}

// FuncInfo bundles the analyses computed once per original function during
// the fuzzer's preprocessing phase. It is treated as immutable afterwards;
// mutant-specific state lives in Overlay.
type FuncInfo struct {
	F             *ir.Function
	Dom           *DomTree
	ShuffleRanges []ShuffleRange
	ConstSites    []ConstSite
}

// Preprocess computes the per-function analyses (paper §III-A: "computing
// its dominance tree and scanning it to build a list of literal constants
// ... done early to avoid slowing down the main mutation loop").
func Preprocess(f *ir.Function) *FuncInfo {
	info := &FuncInfo{F: f, Dom: BuildDomTree(f)}
	for _, b := range f.Blocks {
		info.ShuffleRanges = append(info.ShuffleRanges, ComputeShuffleRanges(b)...)
	}
	info.ConstSites = ScanConstants(f)
	return info
}

// ScanConstants finds every literal integer constant operand in f.
func ScanConstants(f *ir.Function) []ConstSite {
	var sites []ConstSite
	f.ForEachInstr(func(_ *ir.Block, _ int, in *ir.Instr) bool {
		for i, a := range in.Args {
			if _, ok := a.(*ir.Const); ok {
				sites = append(sites, ConstSite{Instr: in, Arg: i})
			}
		}
		return true
	})
	return sites
}

// hasOrderingSideEffect reports whether an instruction's position relative
// to other side-effecting instructions matters: memory writes, calls
// (which may clobber memory), and instructions with immediate UB must not
// be reordered across each other. Loads may be reordered with other loads
// but not across stores/calls; to keep ranges simple and obviously sound
// we treat loads as ordering-relevant too, matching the conservative
// behaviour the paper describes ("lacks mutual internal dependencies").
func hasOrderingSideEffect(in *ir.Instr) bool {
	switch in.Op {
	case ir.OpLoad, ir.OpStore, ir.OpCall, ir.OpAlloca:
		return true
	}
	if in.Op.IsDivRem() {
		// Division traps on zero divisors; hoisting one above a branch is
		// impossible within a block, but reordering with a call that might
		// not return changes observable behaviour. Treat as a fence unless
		// the divisor is a known nonzero constant.
		if c, ok := in.Args[1].(*ir.Const); !ok || c.IsZero() {
			return true
		}
	}
	return false
}

// ComputeShuffleRanges finds the maximal shufflable ranges in a block.
// A range extends while each new instruction (a) has no data dependency on
// any other instruction inside the range and (b) is not ordering-relevant
// per hasOrderingSideEffect. Terminators and phis never participate.
func ComputeShuffleRanges(b *ir.Block) []ShuffleRange {
	var ranges []ShuffleRange
	n := len(b.Instrs)

	flush := func(start, end int) {
		if end-start >= 2 {
			ranges = append(ranges, ShuffleRange{Block: b, Start: start, End: end})
		}
	}

	start := 0
	inRange := make(map[*ir.Instr]bool)
	reset := func(i int) {
		start = i
		inRange = make(map[*ir.Instr]bool)
	}
	reset(0)

	for i := 0; i < n; i++ {
		in := b.Instrs[i]
		bad := in.Op.IsTerminator() || in.Op == ir.OpPhi || hasOrderingSideEffect(in)
		if !bad {
			for _, a := range in.Args {
				if def, ok := a.(*ir.Instr); ok && inRange[def] {
					bad = true
					break
				}
			}
		}
		if bad {
			flush(start, i)
			reset(i + 1)
			continue
		}
		inRange[in] = true
	}
	flush(start, n)
	return ranges
}

// UseSites returns, for each instruction-produced value in f, the list of
// (user, operand index) pairs. Used by the bitwidth mutation's use-tree
// walk (paper §IV-H) and by cleanup passes.
func UseSites(f *ir.Function) map[ir.Value][]ConstSite {
	m := make(map[ir.Value][]ConstSite)
	f.ForEachInstr(func(_ *ir.Block, _ int, in *ir.Instr) bool {
		for i, a := range in.Args {
			switch a.(type) {
			case *ir.Instr, *ir.Param:
				m[a] = append(m[a], ConstSite{Instr: in, Arg: i})
			}
		}
		return true
	})
	return m
}
