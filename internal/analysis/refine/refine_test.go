package refine

import (
	"strings"
	"testing"

	"repro/internal/parser"
)

// checkPair parses two single-function modules and runs the prover with
// the target function resolved from the source module's context (the
// callee declarations both sides share).
func checkPair(t *testing.T, srcText, tgtText string) Report {
	t.Helper()
	sm, err := parser.Parse(srcText)
	if err != nil {
		t.Fatalf("parse src: %v", err)
	}
	tm, err := parser.Parse(tgtText)
	if err != nil {
		t.Fatalf("parse tgt: %v", err)
	}
	return Check(sm, sm.Defs()[0], tm.Defs()[0])
}

func wantOutcome(t *testing.T, rep Report, want Outcome, wantRule string) {
	t.Helper()
	if rep.Outcome != want {
		t.Fatalf("outcome = %v (rule %q, %s), want %v", rep.Outcome, rep.Rule, rep.Detail, want)
	}
	if wantRule != "" && rep.Rule != wantRule {
		t.Fatalf("rule = %q (%s), want %q", rep.Rule, rep.Detail, wantRule)
	}
}

func TestAlphaEquivalence(t *testing.T) {
	src := `define i32 @f(i32 %x, i32 %y) {
entry:
  %a = add i32 %x, %y
  %c = icmp ult i32 %a, %x
  br i1 %c, label %then, label %else
then:
  ret i32 %a
else:
  ret i32 0
}`
	// Same function, every name changed.
	tgt := `define i32 @f(i32 %p, i32 %q) {
start:
  %sum = add i32 %p, %q
  %ovf = icmp ult i32 %sum, %p
  br i1 %ovf, label %yes, label %no
yes:
  ret i32 %sum
no:
  ret i32 0
}`
	wantOutcome(t, checkPair(t, src, tgt), Proved, "alpha-equal")
}

func TestDroppedFlagSubsumes(t *testing.T) {
	src := `define i8 @f(i8 %x) {
  %a = add nsw nuw i8 %x, 1
  ret i8 %a
}`
	tgt := `define i8 @f(i8 %x) {
  %a = add i8 %x, 1
  ret i8 %a
}`
	wantOutcome(t, checkPair(t, src, tgt), Proved, "subsume")
}

func TestAddedFlagBailsWithoutProof(t *testing.T) {
	src := `define i8 @f(i8 %x) {
  %a = add i8 %x, 100
  ret i8 %a
}`
	tgt := `define i8 @f(i8 %x) {
  %a = add nsw i8 %x, 100
  ret i8 %a
}`
	wantOutcome(t, checkPair(t, src, tgt), Bailout, "")
}

func TestAddedFlagProvenDead(t *testing.T) {
	// After masking to 4 bits, x+1 can never wrap unsigned at width 8:
	// range facts prove the added nuw is dead.
	src := `define i8 @f(i8 %x) {
  %m = and i8 %x, 15
  %a = add i8 %m, 1
  ret i8 %a
}`
	tgt := `define i8 @f(i8 %x) {
  %m = and i8 %x, 15
  %a = add nuw i8 %m, 1
  ret i8 %a
}`
	wantOutcome(t, checkPair(t, src, tgt), Proved, "subsume")
}

func TestDeletedPureInstr(t *testing.T) {
	src := `define i32 @f(i32 %x) {
  %dead = mul i32 %x, %x
  %a = add i32 %x, 1
  ret i32 %a
}`
	tgt := `define i32 @f(i32 %x) {
  %a = add i32 %x, 1
  ret i32 %a
}`
	wantOutcome(t, checkPair(t, src, tgt), Proved, "subsume")
}

func TestDeletedStoreBails(t *testing.T) {
	src := `define i32 @f(ptr %p, i32 %x) {
  store i32 %x, ptr %p
  ret i32 %x
}`
	tgt := `define i32 @f(ptr %p, i32 %x) {
  ret i32 %x
}`
	rep := checkPair(t, src, tgt)
	if rep.Outcome != Bailout {
		t.Fatalf("deleting a store must bail, got %v (%s)", rep.Outcome, rep.Rule)
	}
	if !strings.Contains(rep.Detail, "store") {
		t.Fatalf("bailout detail %q does not name the store", rep.Detail)
	}
}

func TestDeletedDroppableCall(t *testing.T) {
	src := `declare i32 @pure(i32) readnone willreturn nounwind
define i32 @f(i32 %x) {
  %dead = call i32 @pure(i32 %x)
  %a = add i32 %x, 1
  ret i32 %a
}`
	tgt := `define i32 @f(i32 %x) {
  %a = add i32 %x, 1
  ret i32 %a
}`
	wantOutcome(t, checkPair(t, src, tgt), Proved, "subsume")
}

func TestDeletedEffectfulCallBails(t *testing.T) {
	src := `declare i32 @ext(i32)
define i32 @f(i32 %x) {
  %dead = call i32 @ext(i32 %x)
  %a = add i32 %x, 1
  ret i32 %a
}`
	tgt := `define i32 @f(i32 %x) {
  %a = add i32 %x, 1
  ret i32 %a
}`
	wantOutcome(t, checkPair(t, src, tgt), Bailout, "")
}

func TestIdentityChainForwarding(t *testing.T) {
	// tgt returns x directly; src routes it through x+0 and x*1.
	src := `define i32 @f(i32 %x) {
  %a = add i32 %x, 0
  %b = mul i32 %a, 1
  ret i32 %b
}`
	tgt := `define i32 @f(i32 %x) {
  ret i32 %x
}`
	wantOutcome(t, checkPair(t, src, tgt), Proved, "subsume")
}

func TestFactProvenConstant(t *testing.T) {
	// x & 0 is provably 0 and never poison, so tgt may return the
	// literal.
	src := `define i32 @f(i32 %x) {
  %a = and i32 %x, 0
  ret i32 %a
}`
	tgt := `define i32 @f(i32 %x) {
  ret i32 0
}`
	wantOutcome(t, checkPair(t, src, tgt), Proved, "subsume")
}

func TestFreezeOfPossiblyPoisonBails(t *testing.T) {
	// Two freezes of a possibly-poison value are independent
	// nondeterministic choices; the matcher must not align them when the
	// operands differ structurally (here: chased through x+0).
	src := `define i8 @f(i8 %x) {
  %p = add nsw i8 %x, 1
  %q = add i8 %p, 0
  %fz = freeze i8 %q
  ret i8 %fz
}`
	tgt := `define i8 @f(i8 %x) {
  %p = add nsw i8 %x, 1
  %fz = freeze i8 %p
  ret i8 %fz
}`
	wantOutcome(t, checkPair(t, src, tgt), Bailout, "")
}

func TestFreezeOfNeverPoisonMatches(t *testing.T) {
	// noundef pins the parameter non-poison, so flagless add stays
	// non-poison and freeze is the identity on both sides.
	src := `define i8 @f(i8 noundef %x) {
  %p = add i8 %x, 1
  %fz = freeze i8 %p
  ret i8 %fz
}`
	wantOutcome(t, checkPair(t, src, src), Proved, "alpha-equal")
}

func TestPoisonSourceOperandVacuous(t *testing.T) {
	// The source stores poison; any target value refines it.
	src := `define i8 @f(i8 %x) {
  %a = add i8 poison, 1
  ret i8 %a
}`
	tgt := `define i8 @f(i8 %x) {
  %a = add i8 42, 1
  ret i8 %a
}`
	wantOutcome(t, checkPair(t, src, tgt), Proved, "subsume")
}

func TestConstRetMismatchRefuted(t *testing.T) {
	src := `define i8 @f(i8 %x) {
  ret i8 3
}`
	tgt := `define i8 @f(i8 %x) {
  ret i8 4
}`
	wantOutcome(t, checkPair(t, src, tgt), Refuted, "const-ret-mismatch")
}

func TestDifferentConstantsBail(t *testing.T) {
	// Different constants inside a larger body: not provably equal, not
	// a const-ret refutation — the SAT oracle decides.
	src := `define i8 @f(i8 %x) {
  %a = add i8 %x, 1
  ret i8 %a
}`
	tgt := `define i8 @f(i8 %x) {
  %a = add i8 %x, 2
  ret i8 %a
}`
	wantOutcome(t, checkPair(t, src, tgt), Bailout, "")
}

func TestBlockCountMismatchBails(t *testing.T) {
	src := `define i32 @f(i32 %x) {
entry:
  br label %next
next:
  ret i32 %x
}`
	tgt := `define i32 @f(i32 %x) {
  ret i32 %x
}`
	wantOutcome(t, checkPair(t, src, tgt), Bailout, "")
}

func TestSignatureMismatchBails(t *testing.T) {
	src := `define i32 @f(i32 %x) {
  ret i32 %x
}`
	tgt := `define i32 @f(i32 %x, i32 %y) {
  ret i32 %x
}`
	wantOutcome(t, checkPair(t, src, tgt), Bailout, "")
}

func TestSwappedCommutativeOperandsBail(t *testing.T) {
	// x+y vs y+x is Valid, but the positional matcher does not prove
	// commutativity — it must bail, never misprove.
	src := `define i32 @f(i32 %x, i32 %y) {
  %a = add i32 %x, %y
  ret i32 %a
}`
	tgt := `define i32 @f(i32 %x, i32 %y) {
  %a = add i32 %y, %x
  ret i32 %a
}`
	wantOutcome(t, checkPair(t, src, tgt), Bailout, "")
}

func TestMemoryOpsAlphaEqual(t *testing.T) {
	src := `define i32 @f(ptr %p, i32 %x) {
  store i32 %x, ptr %p
  %v = load i32, ptr %p
  ret i32 %v
}`
	wantOutcome(t, checkPair(t, src, src), Proved, "alpha-equal")
}

func TestAlignmentMismatchBails(t *testing.T) {
	src := `define i32 @f(ptr %p) {
  %v = load i32, ptr %p, align 4
  ret i32 %v
}`
	tgt := `define i32 @f(ptr %p) {
  %v = load i32, ptr %p, align 8
  ret i32 %v
}`
	wantOutcome(t, checkPair(t, src, tgt), Bailout, "")
}
