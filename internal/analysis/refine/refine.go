// Package refine is the static refinement pre-verifier: it attempts to
// prove the Alive2 refinement relation src ⊑ tgt (DESIGN.md §4) from IR
// structure and dataflow facts alone, without bit-blasting a SAT query.
//
// The prover is the first rung of the translation validator's oracle
// cascade (internal/tv). Its contract is strict: a Proved outcome must
// coincide with the verdict the full SAT oracle would return (Valid), so
// accelerated campaigns stay byte-identical with -no-static-tv. Anything
// the prover cannot establish is a Bailout, and SAT decides as before.
// A Refuted outcome is advisory — static evidence that the pair does not
// refine — and never replaces the SAT verdict or its counterexample.
//
// Three layers of reasoning, in the order they are applied:
//
//  1. alpha-equivalence: tgt is src instruction-for-instruction under a
//     positional renaming of blocks, parameters, and SSA values;
//  2. structural subsumption: tgt is src with pure instructions deleted,
//     poison flags dropped, and operands substituted by values that
//     provably refine them (constant folds, identity-chain forwarding);
//  3. fact-based discharge: known-bits/range facts from analysis.Facts
//     prove substituted values equal and prove added flags can never
//     fire, and the poison lattice (analysis.NeverPoison) proves freeze
//     and select rewrites introduce no fresh poison.
//
// The soundness argument for each rule is spelled out in
// docs/ANALYSIS.md and enforced differentially against the SAT oracle in
// soundness_test.go.
package refine

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/ir"
)

// Outcome classifies one static refinement attempt.
type Outcome int

const (
	// Bailout: the prover cannot decide; the SAT oracle must run.
	Bailout Outcome = iota
	// Proved: src ⊑ tgt holds; SAT would return Valid.
	Proved
	// Refuted: static evidence that src ⊑ tgt fails. Advisory only —
	// SAT still runs and produces the canonical verdict and
	// counterexample.
	Refuted
)

func (o Outcome) String() string {
	switch o {
	case Proved:
		return "proved"
	case Refuted:
		return "refuted"
	default:
		return "bailout"
	}
}

// Report is the result of one static refinement attempt.
type Report struct {
	Outcome Outcome
	// Rule names the prover that decided: "alpha-equal", "subsume", or
	// "const-ret-mismatch" (Refuted). Empty on Bailout.
	Rule string
	// Detail explains a Bailout or Refuted outcome for debugging.
	Detail string
}

// Check attempts to statically decide the refinement src ⊑ tgt. mod
// supplies callee declarations (attribute information for call
// dropping); it may be nil, which only makes the prover more
// conservative.
func Check(mod *ir.Module, src, tgt *ir.Function) Report {
	if src.IsDecl || tgt.IsDecl {
		return bail("declaration")
	}
	if err := signaturesMatch(src, tgt); err != "" {
		return bail(err)
	}
	if len(src.Blocks) != len(tgt.Blocks) {
		// The matcher requires an isomorphic CFG; block-structure edits
		// (simplifycfg-style rewrites) go to SAT.
		return bailRefute(mod, src, tgt, "CFG shape differs")
	}
	m := newMatcher(mod, src, tgt)
	if detail := m.run(); detail != "" {
		return bailRefute(mod, src, tgt, detail)
	}
	rule := "alpha-equal"
	if m.weakened {
		rule = "subsume"
	}
	return Report{Outcome: Proved, Rule: rule}
}

func bail(detail string) Report { return Report{Outcome: Bailout, Detail: detail} }

// bailRefute is the bailout path with a last-ditch sound refutation
// check: if both functions are straight-line, UB-free, and provably
// return distinct non-poison constants, the pair cannot refine.
func bailRefute(mod *ir.Module, src, tgt *ir.Function, detail string) Report {
	if refutedByConstRet(src, tgt) {
		return Report{Outcome: Refuted, Rule: "const-ret-mismatch", Detail: detail}
	}
	return bail(detail)
}

// signaturesMatch mirrors tv.checkSignatures but additionally requires
// identical parameter attributes: the encoder derives per-parameter
// poison and UB conditions (noundef) from them, so the matcher's
// positional parameter map is only meaningful when they agree.
func signaturesMatch(src, tgt *ir.Function) string {
	if !ir.TypesEqual(src.RetTy, tgt.RetTy) {
		return "return types differ"
	}
	if len(src.Params) != len(tgt.Params) {
		return "parameter counts differ"
	}
	for i := range src.Params {
		if !ir.TypesEqual(src.Params[i].Ty, tgt.Params[i].Ty) {
			return fmt.Sprintf("parameter %d types differ", i)
		}
		if src.Params[i].Attrs != tgt.Params[i].Attrs {
			return fmt.Sprintf("parameter %d attributes differ", i)
		}
	}
	return ""
}

// refutedByConstRet implements the advisory refutation: single-block
// functions built only from UB-free pure instructions whose return
// values are proven distinct non-poison constants cannot refine.
func refutedByConstRet(src, tgt *ir.Function) bool {
	sv, ok := pureConstRet(src)
	if !ok {
		return false
	}
	tv, ok := pureConstRet(tgt)
	if !ok {
		return false
	}
	return sv != tv
}

func pureConstRet(f *ir.Function) (uint64, bool) {
	if len(f.Blocks) != 1 {
		return 0, false
	}
	b := f.Blocks[0]
	for _, in := range b.Instrs {
		switch {
		case in.Op == ir.OpRet:
		case in.Op.IsBinary() && !in.Op.IsDivRem():
		case in.Op == ir.OpICmp, in.Op == ir.OpSelect, in.Op.IsCast(), in.Op == ir.OpFreeze:
		default:
			return 0, false // memory, calls, division: potential UB or effects
		}
	}
	term := b.Term()
	if term == nil || term.Op != ir.OpRet || len(term.Args) != 1 {
		return 0, false
	}
	fa := analysis.NewFacts(f)
	if !fa.NeverPoison(term.Args[0]) {
		return 0, false
	}
	return constValue(fa, term.Args[0], b)
}

// constValue resolves v to a proven constant via known bits or (guard
// refined) ranges at block at.
func constValue(fa *analysis.Facts, v ir.Value, at *ir.Block) (uint64, bool) {
	if c, ok := v.(*ir.Const); ok {
		return c.Val, true
	}
	if _, isInt := ir.IsInt(v.Type()); !isInt {
		return 0, false
	}
	if kn := fa.Known(v); kn.Width > 0 && kn.IsConst() {
		return kn.Const(), true
	}
	if r := fa.RangeOf(v, at); r.Width > 0 && r.IsConst() {
		return r.Const(), true
	}
	return 0, false
}
