package refine

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/apint"
	"repro/internal/ir"
)

// maxChase bounds identity-chain forwarding so degenerate chains (and
// single-incoming phi cycles) cannot loop.
const maxChase = 64

// matcher proves structural subsumption: every target instruction is
// matched, in block order, against a source instruction computing a
// value that refines it, while unmatched source instructions must be
// deletable (pure, or attribute-droppable calls). The invariant
// maintained for every matched pair (s, t) is exactly the per-value
// refinement obligation the SAT encoding checks:
//
//	on every execution where src has no UB and s is non-poison,
//	t is non-poison and bit-equal to s.
//
// Control flow: blocks are paired positionally and terminators must
// match with positionally-equal targets, so on every src-UB-free
// execution both functions walk corresponding paths (a poison branch
// condition is UB in src, which the obligation excludes).
type matcher struct {
	mod      *ir.Module
	src, tgt *ir.Function
	sfa, tfa *analysis.Facts
	sIdx     map[*ir.Block]int
	tIdx     map[*ir.Block]int
	// vmap maps a source value to the target value proven to refine it
	// (parameters positionally, matched instructions by the match).
	vmap map[ir.Value]ir.Value
	// weakened records that the proof used more than alpha-renaming:
	// a deletion, a dropped/added flag, or a fact-based substitution.
	weakened bool
}

func newMatcher(mod *ir.Module, src, tgt *ir.Function) *matcher {
	m := &matcher{
		mod: mod, src: src, tgt: tgt,
		sfa:  analysis.NewFacts(src),
		tfa:  analysis.NewFacts(tgt),
		sIdx: make(map[*ir.Block]int, len(src.Blocks)),
		tIdx: make(map[*ir.Block]int, len(tgt.Blocks)),
		vmap: make(map[ir.Value]ir.Value),
	}
	for i, b := range src.Blocks {
		m.sIdx[b] = i
	}
	for i, b := range tgt.Blocks {
		m.tIdx[b] = i
	}
	for i, p := range src.Params {
		m.vmap[p] = tgt.Params[i]
	}
	return m
}

// run matches every block pair; it returns "" on success or a bailout
// detail.
func (m *matcher) run() string {
	for i, sb := range m.src.Blocks {
		if detail := m.matchBlock(sb, m.tgt.Blocks[i]); detail != "" {
			return fmt.Sprintf("block %d (%s): %s", i, sb.Nm, detail)
		}
	}
	return ""
}

func (m *matcher) matchBlock(sb, tb *ir.Block) string {
	S := sb.Instrs
	si := 0
	for _, t := range tb.Instrs {
		matched := false
		for si < len(S) {
			s := S[si]
			if m.matchInstr(s, t) {
				if s.Nm != "" {
					m.vmap[s] = t
				}
				si++
				matched = true
				break
			}
			if !m.deletable(s) {
				return fmt.Sprintf("%s does not match %s and is not deletable", s.Op, t.Op)
			}
			m.weakened = true
			si++
		}
		if !matched {
			return fmt.Sprintf("target %s has no source counterpart", t.Op)
		}
	}
	for ; si < len(S); si++ {
		if !m.deletable(S[si]) {
			return fmt.Sprintf("trailing source %s is not deletable", S[si].Op)
		}
		m.weakened = true
	}
	return ""
}

// deletable reports whether removing s from src is refinement-sound on
// its own: the removal can only shrink src's UB and poison, and cannot
// perturb the call sequence or memory the validator observes. Stores
// and terminators are never deletable; calls only when their attributes
// permit dropping (tv.matchCalls skips exactly those) and no pointer
// argument could have escaped a provenance the remaining calls havoc.
func (m *matcher) deletable(s *ir.Instr) bool {
	if s.Op.IsTerminator() || s.Op == ir.OpStore {
		return false
	}
	if s.Op != ir.OpCall {
		return true
	}
	if _, intrinsic := s.IsIntrinsicCall(); intrinsic {
		// Intrinsics are pure in the encoding; deleting an assume only
		// removes a UB source.
		return true
	}
	var attrs ir.FuncAttrs
	if m.mod != nil {
		if decl := m.mod.FuncByName(s.Callee); decl != nil {
			attrs = decl.Attrs
		}
	}
	if !(attrs.Readnone || attrs.Readonly) || !attrs.Willreturn || !attrs.Nounwind {
		return false
	}
	for _, a := range s.Args {
		if ir.IsPtr(a.Type()) {
			return false
		}
	}
	return true
}

// matchInstr reports whether t (target) is refined by s (source): same
// operation and type, flags at most weakened (or provably dead), and
// every operand pair in the refinement relation.
func (m *matcher) matchInstr(s, t *ir.Instr) bool {
	if s.Op != t.Op || !ir.TypesEqual(s.Ty, t.Ty) || len(s.Args) != len(t.Args) {
		return false
	}
	switch s.Op {
	case ir.OpICmp:
		if s.Pred != t.Pred {
			return false
		}
	case ir.OpCall:
		if s.Callee != t.Callee || !ir.TypesEqual(s.Sig, t.Sig) {
			return false
		}
	case ir.OpAlloca:
		if !ir.TypesEqual(s.AllocTy, t.AllocTy) || s.Align != t.Align {
			return false
		}
	case ir.OpLoad, ir.OpStore:
		if s.Align != t.Align {
			return false
		}
	case ir.OpBr, ir.OpCondBr:
		if !m.targetsAligned(s, t) {
			return false
		}
	case ir.OpPhi:
		if len(s.Preds) != len(t.Preds) {
			return false
		}
		for i := range s.Preds {
			if m.sIdx[s.Preds[i]] != m.tIdx[t.Preds[i]] {
				return false
			}
		}
	case ir.OpFreeze:
		// Two freezes of a possibly-poison value are independent
		// nondeterministic choices; only a never-poison operand makes
		// freeze the identity on both sides.
		if !m.sfa.NeverPoison(s.Args[0]) {
			return false
		}
	}
	if !m.flagsRefine(s, t) {
		return false
	}
	for i := range s.Args {
		if !m.valueRefines(s.Args[i], t.Args[i], s.Parent(), t.Parent()) {
			return false
		}
	}
	return true
}

func (m *matcher) targetsAligned(s, t *ir.Instr) bool {
	if len(s.Targets) != len(t.Targets) {
		return false
	}
	for i := range s.Targets {
		si, ok1 := m.sIdx[s.Targets[i]]
		ti, ok2 := m.tIdx[t.Targets[i]]
		if !ok1 || !ok2 || si != ti {
			return false
		}
	}
	return true
}

// flagsRefine checks the poison flags. A flag present on src but absent
// on tgt only removes a poison source — always sound. A flag present on
// tgt but absent on src would add one, so it must be provably unable to
// fire (range/known-bits facts on the target's own operands).
func (m *matcher) flagsRefine(s, t *ir.Instr) bool {
	if s.Nuw == t.Nuw && s.Nsw == t.Nsw && s.Exact == t.Exact {
		return true
	}
	m.weakened = true
	needNuw := t.Nuw && !s.Nuw
	needNsw := t.Nsw && !s.Nsw
	needExact := t.Exact && !s.Exact
	if !needNuw && !needNsw && !needExact {
		return true // flags only dropped
	}
	nuw, nsw, exact := m.tfa.FlagNeverFires(t)
	return (!needNuw || nuw) && (!needNsw || nsw) && (!needExact || exact)
}

// valueRefines establishes the per-operand obligation: whenever src's
// value sa is non-poison (on a src-UB-free execution), tgt's value ta
// is non-poison and bit-equal. Values are first forwarded through
// identity chains on their own side, then compared through the match
// map, as identical constants, or through fact-proven constancy.
func (m *matcher) valueRefines(sa, ta ir.Value, sb, tb *ir.Block) bool {
	if !ir.TypesEqual(sa.Type(), ta.Type()) {
		return false
	}
	// Exact positional match first: it needs no chasing and keeps pure
	// alpha-equivalent pairs labelled alpha-equal.
	if mapped, ok := m.vmap[sa]; ok && mapped == ta {
		return true
	}
	if c, ok := sa.(*ir.Const); ok {
		if ct, ok2 := ta.(*ir.Const); ok2 && c.Val == ct.Val {
			return true
		}
	}
	ra := m.chase(sa, m.sfa)
	rt := m.chase(ta, m.tfa)
	if ra != sa || rt != ta {
		m.weakened = true
	}
	if mapped, ok := m.vmap[ra]; ok && mapped == rt {
		return true
	}
	// A source operand that is poison on every execution makes the
	// obligation vacuous in every operand position the matcher accepts:
	// strict consumers yield src poison, UB-strict positions (branch
	// conditions, divisors, addresses) make src itself UB, and the
	// non-strict positions (select/phi arms, stored values, call
	// arguments, return values) are refined by anything when the source
	// side is poison. The one exception, freeze, never matches a
	// possibly-poison operand in the first place.
	if _, isPoison := ra.(*ir.Poison); isPoison || m.sfa.AlwaysPoison(ra) {
		m.weakened = true
		return true
	}
	switch a := ra.(type) {
	case *ir.Const:
		if c, ok := rt.(*ir.Const); ok && c.Val == a.Val {
			return true
		}
	case *ir.NullPtr:
		if _, ok := rt.(*ir.NullPtr); ok {
			return true
		}
	}
	// Fact-based equality. Source side: whenever ra is non-poison it
	// equals ka. Target side: a literal constant is trivially equal and
	// never poison; a proven-constant instruction additionally needs a
	// never-poison proof, since the obligation demands a defined value.
	if ka, ok := constValue(m.sfa, ra, sb); ok {
		if c, isC := rt.(*ir.Const); isC && c.Val == ka {
			m.weakened = true
			return true
		}
		if kt, ok2 := constValue(m.tfa, rt, tb); ok2 && kt == ka && m.tfa.NeverPoison(rt) {
			m.weakened = true
			return true
		}
	}
	return false
}

// chase follows value-preserving identities (x+0, x*1, x&-1, x>>0,
// x/1, select with equal arms or a constant condition, freeze of a
// never-poison value, single-incoming phi). Every step preserves both
// the bit value and the poison bit exactly — the identity operand
// values make every nuw/nsw/exact flag a no-op — so chased values are
// interchangeable in the refinement relation.
func (m *matcher) chase(v ir.Value, fa *analysis.Facts) ir.Value {
	for steps := 0; steps < maxChase; steps++ {
		in, ok := v.(*ir.Instr)
		if !ok {
			return v
		}
		next := identityOperand(in, fa)
		if next == nil {
			return v
		}
		v = next
	}
	return v
}

// identityOperand returns the operand in forwards to, or nil.
func identityOperand(in *ir.Instr, fa *analysis.Facts) ir.Value {
	constArg := func(i int) (uint64, bool) {
		c, ok := in.Args[i].(*ir.Const)
		if !ok {
			return 0, false
		}
		return c.Val, true
	}
	switch in.Op {
	case ir.OpAdd, ir.OpOr, ir.OpXor:
		if c, ok := constArg(1); ok && c == 0 {
			return in.Args[0]
		}
		if c, ok := constArg(0); ok && c == 0 {
			return in.Args[1]
		}
	case ir.OpSub:
		if c, ok := constArg(1); ok && c == 0 {
			return in.Args[0]
		}
	case ir.OpMul:
		if c, ok := constArg(1); ok && c == 1 {
			return in.Args[0]
		}
		if c, ok := constArg(0); ok && c == 1 {
			return in.Args[1]
		}
	case ir.OpAnd:
		w, isInt := ir.IsInt(in.Ty)
		if !isInt {
			return nil
		}
		if c, ok := constArg(1); ok && c == apint.Mask(w) {
			return in.Args[0]
		}
		if c, ok := constArg(0); ok && c == apint.Mask(w) {
			return in.Args[1]
		}
	case ir.OpShl, ir.OpLShr, ir.OpAShr:
		if c, ok := constArg(1); ok && c == 0 {
			return in.Args[0]
		}
	case ir.OpUDiv, ir.OpSDiv:
		if c, ok := constArg(1); ok && c == 1 {
			return in.Args[0]
		}
	case ir.OpSelect:
		if c, ok := constArg(0); ok {
			if c != 0 {
				return in.Args[1]
			}
			return in.Args[2]
		}
		if in.Args[1] == in.Args[2] && fa.NeverPoison(in.Args[0]) {
			return in.Args[1]
		}
	case ir.OpFreeze:
		if fa.NeverPoison(in.Args[0]) {
			return in.Args[0]
		}
	case ir.OpPhi:
		if len(in.Args) == 1 {
			return in.Args[0]
		}
	}
	return nil
}
