package analysis

import (
	"math/bits"

	"repro/internal/apint"
	"repro/internal/ir"
)

// Demanded returns the demanded-bits mask for the result of in: the
// claim is that flipping any result bit OUTSIDE the mask (while keeping
// the result's poison-ness) changes neither the function's observable
// behavior (return value, UB) nor any store/call operand. A dead
// instruction demands nothing. For non-integer results the mask is 0.
//
// The analysis is a whole-function backward fixpoint computed on first
// query and cached until Invalidate.
func (fa *Facts) Demanded(in *ir.Instr) uint64 {
	if _, ok := ir.IsInt(in.Ty); !ok {
		return 0
	}
	if !fa.hasDem {
		fa.computeDemanded()
	}
	return fa.demanded[in]
}

func (fa *Facts) computeDemanded() {
	dem := make(map[*ir.Instr]uint64)
	for changed := true; changed; {
		changed = false
		for _, b := range fa.F.Blocks {
			for _, u := range b.Instrs {
				var du uint64
				if _, ok := ir.IsInt(u.Ty); ok {
					du = dem[u]
				}
				for i, a := range u.Args {
					def, ok := a.(*ir.Instr)
					if !ok {
						continue
					}
					wOp, ok := ir.IsInt(def.Ty)
					if !ok {
						continue
					}
					d := demandThrough(u, i, du, wOp)
					if dem[def]|d != dem[def] {
						dem[def] |= d
						changed = true
					}
				}
			}
		}
	}
	fa.demanded = dem
	fa.hasDem = true
}

// spreadLow widens a demand mask downward: bit k of an add/sub/mul/shl
// result depends on all operand bits at or below k.
func spreadLow(d uint64) uint64 { return lowMask(bits.Len64(d)) }

// demandThrough computes which bits of operand idx (an integer of width
// wOp) the user u demands, given that u's own result is demanded at du.
// Any operand whose VALUE can influence poison or UB (flag-carrying ops,
// shift amounts, divisors, comparisons, memory addresses, calls,
// terminators) is demanded in full.
func demandThrough(u *ir.Instr, idx int, du uint64, wOp int) uint64 {
	m := apint.Mask(wOp)
	if u.Nuw || u.Nsw || u.Exact {
		return m
	}
	switch u.Op {
	case ir.OpAdd, ir.OpSub, ir.OpMul:
		return spreadLow(du) & m
	case ir.OpAnd:
		if c, ok := otherConst(u, idx); ok {
			return du & c
		}
		return du
	case ir.OpOr:
		if c, ok := otherConst(u, idx); ok {
			return du &^ c
		}
		return du
	case ir.OpXor:
		return du
	case ir.OpShl:
		if idx != 0 {
			return m // shift amount decides poison
		}
		if c, ok := constOperand(u, 1); ok {
			if c >= uint64(wOp) {
				return 0 // result always poison; value bits are moot
			}
			return du >> c
		}
		return spreadLow(du) & m
	case ir.OpLShr:
		if idx != 0 {
			return m
		}
		if c, ok := constOperand(u, 1); ok {
			if c >= uint64(wOp) {
				return 0
			}
			return (du << c) & m
		}
		if du == 0 {
			return 0
		}
		return m &^ lowMask(bits.TrailingZeros64(du))
	case ir.OpAShr:
		if idx != 0 {
			return m
		}
		if c, ok := constOperand(u, 1); ok {
			if c >= uint64(wOp) {
				return 0
			}
			d := (du << c) & m
			if c > 0 && du&(m&^lowMask(wOp-int(c))) != 0 {
				d |= 1 << uint(wOp-1) // high result bits replicate the sign
			}
			return d
		}
		return m
	case ir.OpTrunc:
		return du
	case ir.OpZExt:
		return du & m
	case ir.OpSExt:
		d := du & m
		if du&^m != 0 {
			d |= 1 << uint(wOp-1)
		}
		return d
	case ir.OpSelect:
		if idx == 0 {
			return m
		}
		return du
	case ir.OpFreeze, ir.OpPhi:
		return du
	default:
		// icmp, div/rem, memory, calls, terminators: everything.
		return m
	}
}

func constOperand(u *ir.Instr, idx int) (uint64, bool) {
	c, ok := u.Args[idx].(*ir.Const)
	if !ok {
		return 0, false
	}
	return c.Val, true
}

func otherConst(u *ir.Instr, idx int) (uint64, bool) {
	return constOperand(u, 1-idx)
}
