# Make targets mirror the CI pipeline exactly (.github/workflows/ci.yml
# runs these same targets), so local dev and CI can never drift.

GO ?= go

include tools/tools.mk

.PHONY: build test race vet fmt-check campaign-smoke telemetry-smoke triage-smoke perf-smoke resume-smoke dashboard-smoke profile-smoke stv-smoke cascade-smoke microbench bench bench-baseline ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# internal/campaign's end-to-end tests run many seeded campaigns; under
# the race detector on a loaded runner they can exceed go test's default
# 10m per-package timeout, so give them headroom explicitly.
race:
	$(GO) test -race -timeout 20m ./...

# staticcheck and govulncheck run when installed (CI installs the pinned
# versions via `make lint-tools`; see tools/tools.mk) and are skipped
# with a notice otherwise, so offline machines still get go vet +
# vet-determinism from the bare target.
vet:
	$(GO) vet ./...
	$(GO) run ./tools/vet-determinism -q
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "vet: staticcheck not installed; skipping (make lint-tools)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "vet: govulncheck not installed; skipping (make lint-tools)"; \
	fi

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# A short-budget end-to-end campaign: exercises the sharded scheduler,
# the optimizer, and the verifier without a minutes-long run. Any panic
# or non-zero exit fails the target.
campaign-smoke:
	$(GO) run ./cmd/fuzz-campaign -budget 50 -tvbudget 2000 -workers 4

# Telemetry end-to-end: a 50-mutant campaign writes a metrics snapshot
# and an event journal, then the snapshot is validated against the
# documented schema (docs/OBSERVABILITY.md) with campaign-shaped content
# required (mutants > 0, core stage timings present).
telemetry-smoke:
	$(GO) run ./cmd/fuzz-campaign -budget 50 -tvbudget 2000 -workers 4 \
		-metrics-out telemetry-smoke.json -journal telemetry-smoke.jsonl -stats
	$(GO) run ./cmd/telemetry-check -require-campaign telemetry-smoke.json

# Triage end-to-end: a short seeded campaign over a crash and a
# miscompilation bug writes deduplicated, auto-shrunk reproducer bundles,
# the index must be non-empty, and every bundle must replay (shrunk and
# original mutant both fire; mutant regenerates byte-for-byte from seed).
triage-smoke:
	rm -rf triage-smoke
	$(GO) run ./cmd/fuzz-campaign -budget 120 -tvbudget 4000 -seed 7 -workers 4 \
		-only 55287,59757 -triage-dir triage-smoke -journal triage-smoke.jsonl
	@test -s triage-smoke/index.json || { echo "triage-smoke: no index.json produced"; exit 1; }
	$(GO) run ./cmd/triage-replay -dir triage-smoke
	$(GO) run ./cmd/telemetry-check -trace-out triage-smoke-trace.json triage-smoke.jsonl

# Acceleration A/B end-to-end: the same seeded campaign with the TV
# verdict cache on and off must render byte-identical result tables (the
# cache only ever short-circuits Valid/Unsupported verdicts), and the
# cache-on run must actually take hits — a cache that is wired up but
# never taken fails the build, not just the speedup.
perf-smoke:
	$(GO) run ./cmd/fuzz-campaign -budget 120 -tvbudget 4000 -seed 7 -workers 4 \
		-only 53252,53218,55201,55287,58423,59757,64687 \
		-out perf-smoke-on.txt -metrics-out perf-smoke-on.json
	$(GO) run ./cmd/fuzz-campaign -budget 120 -tvbudget 4000 -seed 7 -workers 4 \
		-only 53252,53218,55201,55287,58423,59757,64687 -no-tv-cache \
		-out perf-smoke-off.txt -metrics-out perf-smoke-off.json
	cmp perf-smoke-on.txt perf-smoke-off.txt
	$(GO) run ./cmd/telemetry-check -require-counter tv.cache.hit perf-smoke-on.json

# Checkpoint/resume end-to-end: an uninterrupted reference run, a
# checkpointed run SIGKILLed mid-campaign, and a -resume continuation at
# a different worker count; the resumed table and triage tree must be
# byte-identical to the reference (docs/CHECKPOINTING.md).
resume-smoke:
	bash tools/resume-smoke.sh

# Live observability end-to-end: a seeded campaign with -metrics-addr on
# an ephemeral port; the dashboard, status API, SSE event stream, and
# Prometheus exposition are all probed mid-run from the one listener, and
# the captures validate with telemetry-check (docs/OBSERVABILITY.md).
dashboard-smoke:
	bash tools/dashboard-smoke.sh

# Cost-attribution profiling end-to-end: the seeded campaign with and
# without -spans-out must render byte-identical result tables (span
# recording is write-only), the deterministic spans file must be
# byte-identical at -workers 1 and 4, and campaign-profile must produce a
# hotspot report that validates with telemetry-check
# (docs/OBSERVABILITY.md).
profile-smoke:
	bash tools/profile-smoke.sh

# Static pre-verifier end-to-end: the seeded campaign with the static
# refinement rung on and off must render byte-identical result tables,
# the on-run must discharge obligations statically (tv.static.proved
# present and positive), and the off-run must record no tv.static.*
# activity (docs/ANALYSIS.md, docs/PERFORMANCE.md).
stv-smoke:
	bash tools/stv-smoke.sh

# Third-wave cascade end-to-end: the seeded campaign with the concrete
# rung, shared src encodings, and the solver portfolio toggled off one at
# a time must render tables byte-identical to the all-on reference at
# -workers 1 and 4, the default stack must exercise the new rungs
# (tv.concrete.screened, tv.srcenc.hit), and each off-run must record no
# activity for its layer (docs/PERFORMANCE.md, docs/OBSERVABILITY.md).
cascade-smoke:
	bash tools/cascade-smoke.sh

# Hot-path microbenchmarks: sat.Solve on canned CNFs, smt blasting and
# sessions, and tv.Verify over the examples corpus — a tracked baseline
# for solver changes independent of the end-to-end harness.
microbench:
	$(GO) test -bench=. -benchmem -run='^$$' ./internal/sat ./internal/smt ./internal/tv

bench:
	$(GO) test -bench=. -benchmem .

# Refresh the committed benchmark baseline (BENCH_throughput.json). Run on
# an otherwise idle machine; the document validates against the
# alive-mutate-bench/v1 schema before it can be committed.
bench-baseline:
	$(GO) run ./cmd/bench-throughput -count 200 -gen 10 -out res.txt -json BENCH_throughput.json
	$(GO) run ./cmd/telemetry-check -require-positive BENCH_throughput.json

ci: build vet fmt-check test race campaign-smoke telemetry-smoke triage-smoke perf-smoke resume-smoke dashboard-smoke profile-smoke stv-smoke cascade-smoke
