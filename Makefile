# Make targets mirror the CI pipeline exactly (.github/workflows/ci.yml
# runs these same targets), so local dev and CI can never drift.

GO ?= go

.PHONY: build test race vet fmt-check campaign-smoke telemetry-smoke triage-smoke bench bench-baseline ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...
	$(GO) run ./tools/vet-determinism -q

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# A short-budget end-to-end campaign: exercises the sharded scheduler,
# the optimizer, and the verifier without a minutes-long run. Any panic
# or non-zero exit fails the target.
campaign-smoke:
	$(GO) run ./cmd/fuzz-campaign -budget 50 -tvbudget 2000 -workers 4

# Telemetry end-to-end: a 50-mutant campaign writes a metrics snapshot
# and an event journal, then the snapshot is validated against the
# documented schema (docs/OBSERVABILITY.md) with campaign-shaped content
# required (mutants > 0, core stage timings present).
telemetry-smoke:
	$(GO) run ./cmd/fuzz-campaign -budget 50 -tvbudget 2000 -workers 4 \
		-metrics-out telemetry-smoke.json -journal telemetry-smoke.jsonl -stats
	$(GO) run ./cmd/telemetry-check -require-campaign telemetry-smoke.json

# Triage end-to-end: a short seeded campaign over a crash and a
# miscompilation bug writes deduplicated, auto-shrunk reproducer bundles,
# the index must be non-empty, and every bundle must replay (shrunk and
# original mutant both fire; mutant regenerates byte-for-byte from seed).
triage-smoke:
	rm -rf triage-smoke
	$(GO) run ./cmd/fuzz-campaign -budget 120 -tvbudget 4000 -seed 7 -workers 4 \
		-only 55287,59757 -triage-dir triage-smoke -journal triage-smoke.jsonl
	@test -s triage-smoke/index.json || { echo "triage-smoke: no index.json produced"; exit 1; }
	$(GO) run ./cmd/triage-replay -dir triage-smoke
	$(GO) run ./cmd/telemetry-check -trace-out triage-smoke-trace.json triage-smoke.jsonl

bench:
	$(GO) test -bench=. -benchmem .

# Refresh the committed benchmark baseline (BENCH_throughput.json). Run on
# an otherwise idle machine; the document validates against the
# alive-mutate-bench/v1 schema before it can be committed.
bench-baseline:
	$(GO) run ./cmd/bench-throughput -count 200 -gen 10 -out res.txt -json BENCH_throughput.json
	$(GO) run ./cmd/telemetry-check BENCH_throughput.json

ci: build vet fmt-check test race campaign-smoke telemetry-smoke triage-smoke
