# Make targets mirror the CI pipeline exactly (.github/workflows/ci.yml
# runs these same targets), so local dev and CI can never drift.

GO ?= go

.PHONY: build test race vet fmt-check campaign-smoke telemetry-smoke bench ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# A short-budget end-to-end campaign: exercises the sharded scheduler,
# the optimizer, and the verifier without a minutes-long run. Any panic
# or non-zero exit fails the target.
campaign-smoke:
	$(GO) run ./cmd/fuzz-campaign -budget 50 -tvbudget 2000 -workers 4

# Telemetry end-to-end: a 50-mutant campaign writes a metrics snapshot
# and an event journal, then the snapshot is validated against the
# documented schema (docs/OBSERVABILITY.md) with campaign-shaped content
# required (mutants > 0, core stage timings present).
telemetry-smoke:
	$(GO) run ./cmd/fuzz-campaign -budget 50 -tvbudget 2000 -workers 4 \
		-metrics-out telemetry-smoke.json -journal telemetry-smoke.jsonl -stats
	$(GO) run ./cmd/telemetry-check -require-campaign telemetry-smoke.json

bench:
	$(GO) test -bench=. -benchmem .

ci: build vet fmt-check test race campaign-smoke telemetry-smoke
