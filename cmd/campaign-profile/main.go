// campaign-profile is the cost-attribution profiler: it answers "where
// does the verification budget go" by ranking seed functions, mutants,
// formula fingerprints, and whole units by TV solver cost, attributing
// cache misses and budget-exhausted Unknown verdicts to their sources —
// the evidence file the second-wave TV optimizations start from
// (docs/PERFORMANCE.md).
//
// Two modes:
//
//	campaign-profile spans.jsonl         analyze an existing -spans-out file
//	campaign-profile                     run a seeded campaign, then report
//
// Run mode defaults reproduce the CI smoke slice (budget 120, seed 7,
// the seven perf-smoke issues — the "995-mutant slice" of
// docs/PERFORMANCE.md), so a bare `campaign-profile` invocation prints a
// deterministic hotspot table in seconds; raise -budget / widen -only
// for a full-registry profile.
//
// Usage:
//
//	campaign-profile [-top 10] [-json hotspots.json] [spans.jsonl]
//	campaign-profile [-budget 120] [-tvbudget 4000] [-seed 7] [-passes O2]
//	    [-workers N] [-only 53252,...] [-deadline 10m]
//	    [-deterministic] [-spans-out spans.jsonl] [-top 10] [-json out.json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/opt"
	"repro/internal/telemetry"
	"repro/internal/telemetry/spans"
)

func main() {
	os.Exit(run())
}

func run() int {
	budget := flag.Int("budget", 120, "max mutants per bug across its seed tests (run mode)")
	tvBudget := flag.Int64("tvbudget", 4000, "SAT conflict budget per refinement query (run mode)")
	seed := flag.Uint64("seed", 7, "campaign master seed (run mode)")
	passSpec := flag.String("passes", "O2", "optimization pipeline (run mode)")
	workers := flag.Int("workers", runtime.NumCPU(), "parallel campaign workers (run mode)")
	deadline := flag.Duration("deadline", 0, "overall wall-clock budget (0 = none; run mode)")
	onlySpec := flag.String("only", "53252,53218,55201,55287,58423,59757,64687",
		"comma-separated issue numbers to restrict the campaign to (run mode; empty = whole registry)")
	deterministic := flag.Bool("deterministic", false, "zero wall-clock in recorded spans: ranking falls back to sat.conflicts and the report is byte-identical at any -workers (run mode)")
	spansOut := flag.String("spans-out", "", "also write the recorded alive-mutate-spans/v1 file here (run mode)")
	topN := flag.Int("top", 10, "entries per hotspot ranking")
	jsonOut := flag.String("json", "", "also write the alive-mutate-hotspots/v1 report to this file")
	noStaticTV := flag.Bool("no-static-tv", false, "disable the static refinement pre-verifier (run mode; the report's \"static\" column drops to zero)")
	noConcreteTV := flag.Bool("no-concrete-tv", false, "disable the concrete-execution differential pre-screen (run mode; the \"conc\" column drops to zero)")
	noSharedSrc := flag.Bool("no-shared-src", false, "disable the per-unit shared src-encoding pool (run mode)")
	portfolio := flag.Int("portfolio", 3, "deterministic solver-portfolio size for budget-Unknown queries (run mode; 0 or 1 = monolithic solve only)")
	flag.Parse()

	var store *spans.Store
	switch flag.NArg() {
	case 0:
		var code int
		store, code = runCampaign(profileConfig{
			budget:        *budget,
			tvBudget:      *tvBudget,
			seed:          *seed,
			passes:        *passSpec,
			workers:       *workers,
			only:          *onlySpec,
			deadline:      *deadline,
			deterministic: *deterministic,
			noStaticTV:    *noStaticTV,
			noConcreteTV:  *noConcreteTV,
			noSharedSrc:   *noSharedSrc,
			portfolio:     *portfolio,
		})
		if store == nil {
			return code
		}
		if *spansOut != "" {
			if err := store.WriteFile(*spansOut); err != nil {
				fmt.Fprintln(os.Stderr, "campaign-profile:", err)
				return 1
			}
		}
	case 1:
		f, err := spans.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "campaign-profile:", err)
			return 1
		}
		store = spans.NewStore(f.Deterministic)
		for _, u := range f.Units {
			store.Add(u)
		}
	default:
		fmt.Fprintln(os.Stderr, "campaign-profile: at most one spans file argument")
		return 2
	}

	h := spans.Compute(store.Units(), store.Deterministic(), *topN)
	fmt.Print(h.Table())
	if *jsonOut != "" {
		b, err := json.MarshalIndent(h, "", "  ")
		if err == nil {
			// Round-trip through the validator so a -json file is
			// schema-valid by construction.
			_, err = spans.ValidateHotspots(b)
		}
		if err == nil {
			err = os.WriteFile(*jsonOut, append(b, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "campaign-profile:", err)
			return 1
		}
	}
	return 0
}

type profileConfig struct {
	budget        int
	tvBudget      int64
	seed          uint64
	passes        string
	workers       int
	only          string
	deadline      time.Duration
	deterministic bool
	noStaticTV    bool
	noConcreteTV  bool
	noSharedSrc   bool
	portfolio     int
}

// runCampaign executes the profiling campaign with span recording on and
// returns the populated store (nil + exit code on failure).
func runCampaign(pc profileConfig) (*spans.Store, int) {
	var only []int
	if pc.only != "" {
		known := map[int]bool{}
		for _, info := range opt.Registry {
			known[info.Issue] = true
		}
		for _, f := range strings.Split(pc.only, ",") {
			issue, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				fmt.Fprintf(os.Stderr, "campaign-profile: bad -only entry %q: %v\n", f, err)
				return nil, 2
			}
			if !known[issue] {
				fmt.Fprintf(os.Stderr, "campaign-profile: -only issue %d is not in the seeded-bug registry\n", issue)
				return nil, 2
			}
			only = append(only, issue)
		}
	}

	store := spans.NewStore(pc.deterministic)
	sink := &telemetry.Sink{Metrics: telemetry.NewCollector(), Shard: -1}
	sink.Metrics.SetLabel("command", "campaign-profile")
	sink.Metrics.SetLabel("workers", strconv.Itoa(pc.workers))
	sink.Metrics.SetLabel("seed", strconv.FormatUint(pc.seed, 10))
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	rep, err := campaign.RunBugs(ctx, campaign.BugConfig{
		Budget:         pc.budget,
		TVBudget:       pc.tvBudget,
		Seed:           pc.seed,
		Passes:         pc.passes,
		Workers:        pc.workers,
		Deadline:       pc.deadline,
		Only:           only,
		Stderr:         os.Stderr,
		Telemetry:      sink,
		Spans:          store,
		NoStaticTV:     pc.noStaticTV,
		NoConcreteTV:   pc.noConcreteTV,
		NoSharedSrcEnc: pc.noSharedSrc,
		Portfolio:      pc.portfolio,
	})
	if rep == nil {
		fmt.Fprintln(os.Stderr, "campaign-profile:", err)
		return nil, 1
	}
	fmt.Fprintf(os.Stderr, "campaign-profile: campaign done — %d/%d bugs found, %d unit span delta(s) recorded\n",
		rep.Found, len(rep.Rows), store.Len())
	return store, 0
}
