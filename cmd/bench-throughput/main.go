// bench-throughput reproduces the paper's throughput experiment (§V-B):
// for each input file it performs the same amount of mutation testing
// twice — once with the integrated alive-mutate loop (everything in one
// process) and once with the discrete-tool baseline of Fig. 2 (separate
// mutate/opt/alive-tv executables communicating through files) — with
// identical PRNG seeds on both sides, and reports per-file and average
// speedups in the artifact's res.txt format (paper Listing 20).
//
// The per-file measurements are scheduled through the campaign engine
// (internal/campaign), one work unit per input file. The default is
// -workers 1 — timing fairness wants an otherwise idle machine — but CI
// smoke runs and multi-core sanity checks can shard the files with
// -workers N; each unit gets a private temp directory so the discrete
// pipelines never collide.
//
// Usage:
//
//	bench-throughput [-count 1000] [-seed 1] [-passes O2] \
//	    [-gen 20] [-workers 1] [-out res.txt] [-json BENCH_throughput.json] \
//	    [-metrics-addr 127.0.0.1:8787] [-metrics-out metrics.json] \
//	    [-spans-out spans.jsonl] [-spans-deterministic] [tests/...ll]
//
// With -gen N and no input files, N corpus files are synthesized first.
//
// Besides the human-readable res.txt, the run emits BENCH_throughput.json
// — a machine-readable result (schema alive-mutate-bench/v1: workers,
// mutants per file, per-file wall times, per-stage nanoseconds for the
// integrated loop) — so successive commits accumulate a perf trajectory
// that scripts can diff. -metrics-addr/-metrics-out expose the underlying
// telemetry exactly as in fuzz-campaign (docs/OBSERVABILITY.md).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/discrete"
	"repro/internal/parser"
	"repro/internal/rng"
	"repro/internal/telemetry"
	"repro/internal/telemetry/spans"
	"repro/internal/tv"
)

type row struct {
	file         string
	integrated   float64 // seconds
	discrete     float64
	perf         float64
	notVerif     bool
	invalid      bool
	integratedNS int64
	discreteNS   int64
}

func main() {
	count := flag.Int("count", 1000, "mutants per input file (the paper's COUNT)")
	seed := flag.Uint64("seed", 1, "master PRNG seed (shared by both workflows)")
	passSpec := flag.String("passes", "O2", "optimization pipeline")
	gen := flag.Int("gen", 20, "generate this many corpus files when none are given")
	workers := flag.Int("workers", 1, "parallel file shards (keep 1 for publishable timings)")
	outPath := flag.String("out", "res.txt", "result file (Listing 20 format)")
	jsonPath := flag.String("json", "BENCH_throughput.json", "machine-readable result file (empty = skip)")
	metricsAddr := flag.String("metrics-addr", "", "serve the live dashboard, status API, SSE events, Prometheus metrics, expvar and pprof on this address (host:port; localhost unless -metrics-public)")
	metricsPublic := flag.Bool("metrics-public", false, "allow -metrics-addr to bind a non-loopback interface (endpoint exposes pprof and internals)")
	metricsOut := flag.String("metrics-out", "", "write the end-of-run metrics snapshot (JSON) to this file")
	repoRoot := flag.String("repo", ".", "repository root (for building the discrete tools)")
	spansOut := flag.String("spans-out", "", "record per-file span deltas (mutant/stage/solver-query tree) and write the alive-mutate-spans/v1 file here")
	spansDet := flag.Bool("spans-deterministic", false, "zero wall-clock in recorded spans so the spans file is byte-identical at any -workers")
	noAnalysis := flag.Bool("no-analysis", false, "disable the dataflow-analysis-backed folds (A/B overhead runs)")
	noTVCache := flag.Bool("no-tv-cache", false, "disable the per-file refinement-verdict cache (A/B comparison runs)")
	noIncremental := flag.Bool("no-incremental", false, "disable assumption-based incremental SAT solving (A/B comparison runs)")
	satPreprocess := flag.Bool("sat-preprocess", false, "enable SatELite-lite CNF preprocessing before each solve")
	noStaticTV := flag.Bool("no-static-tv", false, "disable the static refinement pre-verifier (A/B comparison runs)")
	noConcreteTV := flag.Bool("no-concrete-tv", false, "disable the concrete-execution differential pre-screen (A/B comparison runs)")
	noSharedSrc := flag.Bool("no-shared-src", false, "disable the per-file shared src-encoding pool (A/B comparison runs)")
	portfolio := flag.Int("portfolio", 3, "deterministic solver-portfolio size for budget-Unknown queries (0 or 1 = monolithic solve only)")
	flag.Parse()
	accel := accelConfig{
		cache:       !*noTVCache,
		incremental: !*noIncremental,
		preprocess:  *satPreprocess,
		static:      !*noStaticTV,
		concrete:    !*noConcreteTV,
		sharedSrc:   !*noSharedSrc,
		portfolio:   *portfolio,
	}

	// The integrated loop always records stage telemetry here: the
	// per-stage breakdown is part of the benchmark's output. (Overhead is
	// a few atomic adds per mutant — see EXPERIMENTS.md — and it applies
	// equally to both sides of the comparison's integrated column across
	// commits, so the trajectory stays comparable.)
	sink := &telemetry.Sink{Metrics: telemetry.NewCollector(), Shard: -1}
	sink.Metrics.SetLabel("command", "bench-throughput")
	sink.Metrics.SetLabel("workers", fmt.Sprint(*workers))
	sink.Metrics.SetLabel("seed", fmt.Sprint(*seed))
	if *metricsAddr != "" {
		// Full live surface: the benchmark has no journal file, so the SSE
		// ring is fed by a discard-backed journal (the ring is its only
		// reader), and the coordinator publishes per-file status.
		sink.Status = telemetry.NewStatusPublisher()
		sink.Journal = telemetry.NewJournal(io.Discard)
		defer sink.Journal.Close()
		events := telemetry.NewEventBuffer(0)
		sink.Journal.Tee(events)
		srv, err := telemetry.Serve(*metricsAddr, telemetry.ServeOptions{
			Collector: sink.Metrics,
			Status:    sink.Status,
			Events:    events,
			Public:    *metricsPublic,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "bench-throughput: dashboard at http://%s/ (status /api/status, metrics /metrics/prometheus, pprof /debug/pprof/)\n", srv.Addr)
		defer srv.Close()
	}

	workDir, err := os.MkdirTemp("", "throughput")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(workDir)

	// Gather input files.
	files := flag.Args()
	if len(files) == 0 {
		dir := filepath.Join(workDir, "tests")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fatal(err)
		}
		mod := corpus.Generate(*seed, *gen)
		var decls string
		for _, f := range mod.Funcs {
			if f.IsDecl {
				decls += f.String()
			}
		}
		for i, f := range mod.Defs() {
			p := filepath.Join(dir, fmt.Sprintf("test%d.ll", i))
			if err := os.WriteFile(p, []byte(decls+"\n"+f.String()), 0o644); err != nil {
				fatal(err)
			}
			files = append(files, p)
		}
	}

	tools, err := discrete.BuildTools(*repoRoot, workDir)
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var spanStore *spans.Store
	if *spansOut != "" {
		spanStore = spans.NewStore(*spansDet)
	}

	// One unit per file; every unit is its own group, so the engine is
	// free to shard them across the pool in input order.
	units := make([]campaign.Unit, len(files))
	for i, path := range files {
		i, path := i, path
		tmp := filepath.Join(workDir, fmt.Sprintf("u%d", i))
		units[i] = campaign.Unit{
			Group: filepath.Base(path),
			Name:  filepath.Base(path),
			Seed:  *seed,
			Run: func(ctx context.Context, _ any) (any, bool, error) {
				if err := os.MkdirAll(tmp, 0o755); err != nil {
					return row{}, true, err
				}
				shard := sink.ShardSink(campaign.WorkerID(ctx))
				rec := spanStore.NewRecorder(filepath.Base(path), filepath.Base(path), i, *seed)
				shard.Spans = rec
				r, err := measureFile(ctx, path, tmp, tools, *passSpec, *seed, *count, *noAnalysis, accel, shard)
				if rec != nil {
					// Only the integrated loop records spans; its budget is
					// the fixed mutant count, spent in full on success.
					spanStore.Add(rec.Finish(int64(*count), false))
				}
				sink.Metrics.Merge(shard.Collector())
				return r, true, err
			},
		}
	}
	expStart := time.Now()
	// The error return only reports checkpoint/restore failures; this
	// benchmark configures neither.
	outcomes, _ := campaign.Run(ctx, units, campaign.Options{
		Workers:   *workers,
		Telemetry: sink,
		// Each file-group spends exactly -count mutants in its single
		// unit, so live status reports all-or-nothing per group.
		GroupProgress: func(group string, prev any) telemetry.GroupProgress {
			gp := telemetry.GroupProgress{Total: int64(*count)}
			if prev != nil {
				gp.Spent = int64(*count)
			}
			return gp
		},
		OnGroupDone: func(group string, outs []campaign.Outcome) {
			for _, o := range outs {
				if o.Skipped || o.Err != nil {
					continue
				}
				r := o.Res.(row)
				if !r.invalid {
					fmt.Printf("%s: alive-mutate %.3fs, discrete %.3fs, speedup %.1fx\n",
						r.file, r.integrated, r.discrete, r.perf)
				}
			}
		},
	})

	var rows []row
	var notVerified, invalid []string
	for i, o := range outcomes {
		if o.Err != nil {
			fatal(o.Err)
		}
		if o.Skipped {
			continue // interrupted before this file ran
		}
		r := o.Res.(row)
		if r.invalid {
			invalid = append(invalid, files[i])
			continue
		}
		if r.notVerif {
			notVerified = append(notVerified, r.file)
		}
		rows = append(rows, r)
	}

	// Listing 20 format.
	var b strings.Builder
	fmt.Fprintf(&b, "Total: %d\n", len(rows))
	b.WriteString("Alive-mutate lst:[")
	for i, r := range rows {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%v, '%s')", r.integrated, r.file)
	}
	b.WriteString("]\n")
	b.WriteString("Discrete tools lst:[")
	for i, r := range rows {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%v, '%s')", r.discrete, r.file)
	}
	b.WriteString("]\n")
	b.WriteString("perf lst:[")
	sum := 0.0
	for i, r := range rows {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%v, '%s')", r.perf, r.file)
		sum += r.perf
	}
	b.WriteString("]\n")
	if len(rows) > 0 {
		fmt.Fprintf(&b, "Avg perf:%v\n", sum/float64(len(rows)))
		perfs := make([]float64, len(rows))
		for i, r := range rows {
			perfs[i] = r.perf
		}
		sort.Float64s(perfs)
		fmt.Fprintf(&b, "Best perf:%v\nWorst perf:%v\n", perfs[len(perfs)-1], perfs[0])
	}
	fmt.Fprintf(&b, "Total not-verified:%d\n", len(notVerified))
	fmt.Fprintf(&b, "Not-verified files:%v\n", notVerified)
	fmt.Fprintf(&b, "Total invalid file:%d\n", len(invalid))
	fmt.Fprintf(&b, "Invalid files:%v\n", invalid)

	if err := os.WriteFile(*outPath, []byte(b.String()), 0o644); err != nil {
		fatal(err)
	}
	fmt.Print(b.String())

	if *jsonPath != "" {
		// The document uses internal/telemetry's Bench types, so what this
		// writes is exactly what ValidateBench (telemetry-check) accepts.
		doc := telemetry.Bench{
			Schema:         telemetry.BenchSchemaV1,
			Workers:        *workers,
			MutantsPerFile: *count,
			Passes:         *passSpec,
			Seed:           *seed,
			WallNS:         int64(time.Since(expStart)),
			AvgSpeedup:     avgPerf(rows),
			StagesNS:       sink.Metrics.StageTotals(),
			Solver: &telemetry.BenchSolver{
				TVCacheEnabled: accel.cache,
				// The solver section records effective state: under the
				// benchmark's generous conflict budget the per-class
				// session never engages (it pays off only when budget
				// exhaustion is plausible), so "incremental" is reported
				// false even when the knob is on.
				IncrementalEnabled: accel.incremental && tv.SessionEligible(benchTVBudget),
				PreprocessEnabled:  accel.preprocess,
				ConcreteEnabled:    accel.concrete,
				SharedSrcEnabled:   accel.sharedSrc,
				Portfolio:          accel.portfolio,
				TVCacheHits:        sink.Metrics.Counter("tv.cache.hit").Value(),
				TVCacheMisses:      sink.Metrics.Counter("tv.cache.miss").Value(),
				SATAssumptions:     sink.Metrics.Counter("sat.assumptions").Value(),
				SATPreprocessElim:  sink.Metrics.Counter("sat.preprocess.eliminated").Value(),
				ConcreteScreened:   sink.Metrics.Counter("tv.concrete.screened").Value(),
				ConcreteDiverged:   sink.Metrics.Counter("tv.concrete.diverged").Value(),
				SrcEncHits:         sink.Metrics.Counter("tv.srcenc.hit").Value(),
				SrcEncMisses:       sink.Metrics.Counter("tv.srcenc.miss").Value(),
				PortfolioRaces:     sink.Metrics.Counter("sat.portfolio.races").Value(),
			},
		}
		for _, r := range rows {
			doc.Files = append(doc.Files, telemetry.BenchFile{
				File: r.file, IntegratedNS: r.integratedNS,
				DiscreteNS: r.discreteNS, Speedup: r.perf,
			})
		}
		data, err := doc.MarshalIndentedJSON()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("machine-readable results written to %s\n", *jsonPath)
	}
	if spanStore != nil {
		if err := spanStore.WriteFile(*spansOut); err != nil {
			fatal(err)
		}
		fmt.Printf("span deltas for %d file(s) written to %s (analyze with campaign-profile)\n", spanStore.Len(), *spansOut)
	}
	if *metricsOut != "" {
		data, err := sink.Metrics.Snapshot().MarshalIndentedJSON()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*metricsOut, data, 0o644); err != nil {
			fatal(err)
		}
	}
}

// avgPerf is the mean speedup over the measured files.
func avgPerf(rows []row) float64 {
	if len(rows) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range rows {
		sum += r.perf
	}
	return sum / float64(len(rows))
}

// measureFile times both workflows over one input file. tel is the
// shard-local telemetry sink; the integrated loop's stage breakdown
// records into it, and the discrete loop's wall time lands in
// stage.discrete for comparison.
// accelConfig selects the TV acceleration knobs for the integrated loop
// (the discrete side has no equivalents — its per-iteration process model
// is exactly what the acceleration stack removes).
type accelConfig struct {
	cache       bool
	incremental bool
	preprocess  bool
	static      bool
	concrete    bool
	sharedSrc   bool
	portfolio   int
}

// benchTVBudget is the conflict budget both workflows verify under. It is
// deliberately generous — the benchmark measures steady-state throughput,
// not budget-exhaustion behavior — and is shared between the integrated
// TV options and the discrete pipeline so the comparison stays symmetric.
const benchTVBudget = 30000

// tvOptions resolves one file's TV options; the verdict cache and the
// shared src-encoding pool are per-file, so measurements are independent
// and deterministic.
func (a accelConfig) tvOptions() tv.Options {
	o := tv.Options{
		Incremental:    a.incremental,
		Preprocess:     a.preprocess,
		Static:         a.static,
		Concrete:       a.concrete,
		Portfolio:      a.portfolio,
		ConflictBudget: benchTVBudget,
	}
	if a.cache {
		o.Cache = tv.NewCache()
	}
	if a.sharedSrc {
		o.SrcEnc = tv.NewSrcEncodings()
	}
	return o
}

func measureFile(ctx context.Context, path, tmpDir string, tools discrete.Tools,
	passes string, seed uint64, count int, noAnalysis bool, accel accelConfig, tel *telemetry.Sink) (row, error) {
	r := row{file: filepath.Base(path)}
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	parseStop := tel.Collector().StartStage("parse")
	mod, err := parser.Parse(string(data))
	parseStop()
	if err != nil {
		r.invalid = true
		return r, nil
	}

	// Integrated workflow.
	fz, err := core.New(mod.Clone(), core.Options{
		Passes: passes, Seed: seed, NumMutants: count,
		Telemetry: tel, DisableAnalysis: noAnalysis,
		TV: accel.tvOptions(),
	})
	if err != nil {
		r.invalid = true
		return r, nil
	}
	t0 := time.Now()
	rep := fz.Run()
	r.integratedNS = int64(time.Since(t0))
	r.integrated = time.Duration(r.integratedNS).Seconds()

	// Discrete workflow: same seeds, same count (the Python loop of
	// §V-B).
	pipe := &discrete.Pipeline{Tools: tools, Passes: passes, TmpDir: tmpDir, TVBudget: benchTVBudget}
	master := rng.New(seed)
	t0 = time.Now()
	var disRes discrete.Result
	for i := 0; i < count; i++ {
		if ctx.Err() != nil {
			return r, ctx.Err()
		}
		s := master.SplitSeed()
		ir, err := pipe.Iteration(path, s)
		if err != nil {
			return r, err
		}
		disRes.Valid += ir.Valid
		disRes.Invalid += ir.Invalid
		disRes.Unsupported += ir.Unsupported
		disRes.Unknown += ir.Unknown
		disRes.Crashes += ir.Crashes
	}
	r.discreteNS = int64(time.Since(t0))
	r.discrete = time.Duration(r.discreteNS).Seconds()
	tel.Collector().ObserveStage("discrete", time.Duration(r.discreteNS))
	r.perf = r.discrete / r.integrated
	r.notVerif = rep.Stats.Invalid > 0 || disRes.Invalid > 0
	return r, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench-throughput:", err)
	os.Exit(1)
}
