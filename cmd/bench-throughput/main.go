// bench-throughput reproduces the paper's throughput experiment (§V-B):
// for each input file it performs the same amount of mutation testing
// twice — once with the integrated alive-mutate loop (everything in one
// process) and once with the discrete-tool baseline of Fig. 2 (separate
// mutate/opt/alive-tv executables communicating through files) — with
// identical PRNG seeds on both sides, and reports per-file and average
// speedups in the artifact's res.txt format (paper Listing 20).
//
// Usage:
//
//	bench-throughput [-count 1000] [-seed 1] [-passes O2] \
//	    [-gen 20] [-out res.txt] [tests/...ll]
//
// With -gen N and no input files, N corpus files are synthesized first.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/discrete"
	"repro/internal/parser"
	"repro/internal/rng"
)

func main() {
	count := flag.Int("count", 1000, "mutants per input file (the paper's COUNT)")
	seed := flag.Uint64("seed", 1, "master PRNG seed (shared by both workflows)")
	passSpec := flag.String("passes", "O2", "optimization pipeline")
	gen := flag.Int("gen", 20, "generate this many corpus files when none are given")
	outPath := flag.String("out", "res.txt", "result file (Listing 20 format)")
	repoRoot := flag.String("repo", ".", "repository root (for building the discrete tools)")
	flag.Parse()

	workDir, err := os.MkdirTemp("", "throughput")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(workDir)

	// Gather input files.
	files := flag.Args()
	if len(files) == 0 {
		dir := filepath.Join(workDir, "tests")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fatal(err)
		}
		mod := corpus.Generate(*seed, *gen)
		var decls string
		for _, f := range mod.Funcs {
			if f.IsDecl {
				decls += f.String()
			}
		}
		for i, f := range mod.Defs() {
			p := filepath.Join(dir, fmt.Sprintf("test%d.ll", i))
			if err := os.WriteFile(p, []byte(decls+"\n"+f.String()), 0o644); err != nil {
				fatal(err)
			}
			files = append(files, p)
		}
	}

	tools, err := discrete.BuildTools(*repoRoot, workDir)
	if err != nil {
		fatal(err)
	}

	type row struct {
		file       string
		integrated float64 // seconds
		discrete   float64
		perf       float64
	}
	var rows []row
	var notVerified, invalid []string

	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		mod, err := parser.Parse(string(data))
		if err != nil {
			invalid = append(invalid, path)
			continue
		}

		// Integrated workflow.
		fz, err := core.New(mod.Clone(), core.Options{
			Passes: *passSpec, Seed: *seed, NumMutants: *count,
		})
		if err != nil {
			invalid = append(invalid, path)
			continue
		}
		t0 := time.Now()
		rep := fz.Run()
		integrated := time.Since(t0).Seconds()

		// Discrete workflow: same seeds, same count (the Python loop of
		// §V-B).
		pipe := &discrete.Pipeline{Tools: tools, Passes: *passSpec, TmpDir: workDir, TVBudget: 30000}
		master := rng.New(*seed)
		t0 = time.Now()
		var disRes discrete.Result
		for i := 0; i < *count; i++ {
			s := master.SplitSeed()
			r, err := pipe.Iteration(path, s)
			if err != nil {
				fatal(err)
			}
			disRes.Valid += r.Valid
			disRes.Invalid += r.Invalid
			disRes.Unsupported += r.Unsupported
			disRes.Unknown += r.Unknown
			disRes.Crashes += r.Crashes
		}
		dis := time.Since(t0).Seconds()

		if rep.Stats.Invalid > 0 || disRes.Invalid > 0 {
			notVerified = append(notVerified, filepath.Base(path))
		}
		rows = append(rows, row{
			file: filepath.Base(path), integrated: integrated,
			discrete: dis, perf: dis / integrated,
		})
		fmt.Printf("%s: alive-mutate %.3fs, discrete %.3fs, speedup %.1fx\n",
			filepath.Base(path), integrated, dis, dis/integrated)
	}

	// Listing 20 format.
	var b strings.Builder
	fmt.Fprintf(&b, "Total: %d\n", len(rows))
	b.WriteString("Alive-mutate lst:[")
	for i, r := range rows {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%v, '%s')", r.integrated, r.file)
	}
	b.WriteString("]\n")
	b.WriteString("Discrete tools lst:[")
	for i, r := range rows {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%v, '%s')", r.discrete, r.file)
	}
	b.WriteString("]\n")
	b.WriteString("perf lst:[")
	sum := 0.0
	for i, r := range rows {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%v, '%s')", r.perf, r.file)
		sum += r.perf
	}
	b.WriteString("]\n")
	if len(rows) > 0 {
		fmt.Fprintf(&b, "Avg perf:%v\n", sum/float64(len(rows)))
		perfs := make([]float64, len(rows))
		for i, r := range rows {
			perfs[i] = r.perf
		}
		sort.Float64s(perfs)
		fmt.Fprintf(&b, "Best perf:%v\nWorst perf:%v\n", perfs[len(perfs)-1], perfs[0])
	}
	fmt.Fprintf(&b, "Total not-verified:%d\n", len(notVerified))
	fmt.Fprintf(&b, "Not-verified files:%v\n", notVerified)
	fmt.Fprintf(&b, "Total invalid file:%d\n", len(invalid))
	fmt.Fprintf(&b, "Invalid files:%v\n", invalid)

	if err := os.WriteFile(*outPath, []byte(b.String()), 0o644); err != nil {
		fatal(err)
	}
	fmt.Print(b.String())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench-throughput:", err)
	os.Exit(1)
}
