// alive-tv is the standalone translation validator, the analog of Alive2's
// alive-tv tool used by the discrete baseline workflow (paper Fig. 2 /
// §V-B step 3): it checks that every function in the target file refines
// the same-named function in the source file.
//
// Usage:
//
//	alive-tv [-budget N] [-quiet] source.ll target.ll
//
// Exit codes: 0 all valid, 1 refinement failure, 2 unsupported input,
// 3 usage/IO error, 4 solver budget exhausted.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/ir"
	"repro/internal/moduleio"
	"repro/internal/tv"
)

func main() {
	budget := flag.Int64("budget", 1000000, "SAT conflict budget per query (0 = unlimited)")
	quiet := flag.Bool("quiet", false, "suppress per-function output")
	flag.Parse()

	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: alive-tv source.ll target.ll")
		os.Exit(3)
	}
	load := func(path string) *ir.Module {
		mod, err := moduleio.Load(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "alive-tv:", err)
			os.Exit(3)
		}
		return mod
	}
	srcMod := load(flag.Arg(0))
	tgtMod := load(flag.Arg(1))

	exit := 0
	bump := func(code int) {
		if code > exit {
			exit = code
		}
	}
	opts := tv.Options{ConflictBudget: *budget}
	for _, fn := range tgtMod.Defs() {
		src := srcMod.FuncByName(fn.Name)
		if src == nil || src.IsDecl {
			continue
		}
		r := tv.Verify(srcMod, src, fn, opts)
		if !*quiet {
			fmt.Printf("@%s: %s", fn.Name, r.Verdict)
			if r.Reason != "" {
				fmt.Printf(" (%s)", r.Reason)
			}
			if r.CEX != nil {
				fmt.Printf("\n  %s", r.CEX)
			}
			fmt.Println()
		}
		switch r.Verdict {
		case tv.Invalid:
			bump(1)
		case tv.Unsupported:
			bump(2)
		case tv.Unknown:
			bump(4)
		}
	}
	os.Exit(exit)
}
