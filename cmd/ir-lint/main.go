// ir-lint runs the analysis-backed lint suite (internal/analysis.Lint)
// over IR modules: unreachable blocks, dead parameters, raw poison uses,
// provably redundant poison flags, always-poison instructions and
// malformed alignment assertions.
//
// Usage:
//
//	ir-lint [-disable rule1,rule2] [-q] file.ll [file2.ll ...]
//	ir-lint -rules
//
// Directories are walked for *.ll files. Exit codes: 0 clean, 1
// usage/IO/parse error, 2 diagnostics found.
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/moduleio"
)

func main() {
	disable := flag.String("disable", "", "comma-separated lint rules to skip")
	quiet := flag.Bool("q", false, "suppress per-diagnostic output, print only the summary")
	listRules := flag.Bool("rules", false, "list known rules and exit")
	flag.Parse()

	if *listRules {
		for _, r := range analysis.AllRules {
			fmt.Println(r)
		}
		return
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: ir-lint [-disable rules] [-q] file.ll ...")
		os.Exit(1)
	}
	disabled, err := analysis.ParseRuleList(*disable)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ir-lint:", err)
		os.Exit(1)
	}
	cfg := analysis.LintConfig{Disabled: disabled}

	var files []string
	for _, arg := range flag.Args() {
		info, err := os.Stat(arg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ir-lint:", err)
			os.Exit(1)
		}
		if !info.IsDir() {
			files = append(files, arg)
			continue
		}
		err = filepath.WalkDir(arg, func(p string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(p, ".ll") {
				files = append(files, p)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "ir-lint:", err)
			os.Exit(1)
		}
	}
	sort.Strings(files)

	total := 0
	counts := make(map[analysis.LintRule]int)
	for _, path := range files {
		mod, err := moduleio.Load(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ir-lint: %s: %v\n", path, err)
			os.Exit(1)
		}
		diags := analysis.Lint(mod, cfg)
		total += len(diags)
		for _, d := range diags {
			counts[d.Rule]++
			if !*quiet {
				fmt.Printf("%s: %s\n", path, d)
			}
		}
	}

	if total == 0 {
		fmt.Printf("ir-lint: %d file(s) clean\n", len(files))
		return
	}
	var parts []string
	for _, r := range analysis.AllRules {
		if counts[r] > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", r, counts[r]))
		}
	}
	fmt.Printf("ir-lint: %d finding(s) in %d file(s): %s\n", total, len(files), strings.Join(parts, " "))
	os.Exit(2)
}
