// opt is the standalone optimizer driver, the analog of LLVM's opt tool
// used by the discrete baseline workflow (paper Fig. 2 / §V-B step 2).
//
// Usage:
//
//	opt -passes=O2 [-o out.ll] [-bug N] input.ll
//
// Exit codes: 0 success, 1 usage/IO error, 3 optimizer crash (assertion
// failure analog).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/moduleio"
	"repro/internal/opt"
)

func main() {
	passSpec := flag.String("passes", "O2", "comma-separated pass pipeline (O1, O2, instcombine, ...)")
	out := flag.String("o", "", "output file (default: stdout)")
	bugIssue := flag.Int("bug", 0, "enable the seeded defect with this LLVM issue number (campaign experiments)")
	emitBC := flag.Bool("emit-bitcode", false, "write the result as compact bitcode")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: opt -passes=SPEC [-o out.ll] input.ll")
		os.Exit(1)
	}
	mod, err := moduleio.Load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "opt:", err)
		os.Exit(1)
	}
	passes, err := opt.ByName(*passSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "opt:", err)
		os.Exit(1)
	}
	ctx := opt.NewContext(mod)
	if *bugIssue != 0 {
		found := false
		for _, info := range opt.Registry {
			if info.Issue == *bugIssue {
				ctx.Bugs.Enable(info.ID)
				found = true
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "opt: unknown seeded bug issue %d\n", *bugIssue)
			os.Exit(1)
		}
	}

	// An optimizer panic is the analog of an LLVM assertion failure; the
	// distinct exit code lets the discrete pipeline count it as a crash
	// finding.
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(os.Stderr, "opt: optimizer crash: %v\n", r)
			os.Exit(3)
		}
	}()
	opt.RunPasses(ctx, passes)

	if *out == "" {
		fmt.Print(mod.String())
		return
	}
	if err := moduleio.Save(*out, mod, *emitBC); err != nil {
		fmt.Fprintln(os.Stderr, "opt:", err)
		os.Exit(1)
	}
}
