// fuzz-campaign reproduces the paper's bug-finding experiment (§V-A,
// Table I): for every seeded defect in the optimizer's bug registry it
// runs an alive-mutate fuzzing campaign over the regression-test suite
// (internal/corpus: hand-written-style tests that sit NEAR each
// optimization's patterns, the way LLVM's unit tests sit near LLVM's bugs)
// with that defect enabled, and reports which bugs were found, after how
// many mutants, and by which kind of evidence (refinement failure vs
// crash) — the same census Table I presents for the 33 real LLVM bugs.
//
// Usage:
//
//	fuzz-campaign [-budget 4000] [-seed 7] [-passes O2] [-out table1.txt]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/opt"
	"repro/internal/parser"
	"repro/internal/tv"
)

func main() {
	budget := flag.Int("budget", 4000, "max mutants per bug across its seed tests")
	tvBudget := flag.Int64("tvbudget", 8000, "SAT conflict budget per refinement query")
	seed := flag.Uint64("seed", 7, "campaign master seed")
	passSpec := flag.String("passes", "O2", "optimization pipeline")
	outPath := flag.String("out", "", "also write the table to this file")
	flag.Parse()

	suite := corpus.TargetedTests()

	type row struct {
		info  opt.Info
		found bool
		iters int
		kind  string
		seedT string
		secs  float64
	}
	var rows []row
	foundCount, miscompiles, crashes := 0, 0, 0

	for _, info := range opt.Registry {
		// Seed tests near this bug first; the rest of the suite after.
		var tests []corpus.NamedTest
		for _, t := range suite {
			for _, is := range t.Issues {
				if is == info.Issue {
					tests = append(tests, t)
				}
			}
		}
		for _, t := range suite {
			tagged := false
			for _, is := range t.Issues {
				if is == info.Issue {
					tagged = true
				}
			}
			if !tagged {
				tests = append(tests, t)
			}
		}

		tagged := map[string]bool{}
		for _, t := range suite {
			for _, is := range t.Issues {
				if is == info.Issue {
					tagged[t.Name] = true
				}
			}
		}

		r := row{info: info}
		start := time.Now()
		spent := 0
		for _, t := range tests {
			if spent >= *budget {
				break
			}
			// Seeds tagged near the bug get the lion's share of the
			// budget; untagged suite members mop up what is left.
			n := *budget / 2
			if !tagged[t.Name] {
				n = *budget / 8
			}
			if spent+n > *budget {
				n = *budget - spent
			}
			mod, err := parser.Parse(t.Text)
			if err != nil {
				fmt.Fprintf(os.Stderr, "fuzz-campaign: seed %s: %v\n", t.Name, err)
				continue
			}
			bugs := (&opt.BugSet{}).Enable(info.ID)
			fz, err := core.New(mod, core.Options{
				Passes:             *passSpec,
				Bugs:               bugs,
				Seed:               *seed ^ uint64(info.Issue),
				NumMutants:         n,
				StopAtFirstFinding: true,
				TV:                 tv.Options{ConflictBudget: *tvBudget},
			})
			if err != nil {
				continue // whole seed unsupported for this pipeline
			}
			rep := fz.Run()
			spent += rep.Stats.Iterations
			if len(rep.Findings) > 0 {
				fd := rep.Findings[0]
				r.found = true
				r.iters = spent - rep.Stats.Iterations + fd.Iter
				r.kind = fd.Kind.String()
				r.seedT = t.Name
				foundCount++
				if fd.Kind == core.Crash {
					crashes++
				} else {
					miscompiles++
				}
				break
			}
		}
		r.secs = time.Since(start).Seconds()
		if !r.found {
			r.iters = spent
		}
		rows = append(rows, r)
		status := "NOT FOUND"
		if r.found {
			status = fmt.Sprintf("found as %s after %d mutants (seed test %s)", r.kind, r.iters, r.seedT)
		}
		fmt.Printf("%6d %-26s %-14s %s (%.1fs)\n",
			info.Issue, info.PaperComp, info.Kind, status, r.secs)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "LLVM BUGS FOUND USING ALIVE-MUTATE (reproduction census, cf. paper Table I)\n\n")
	fmt.Fprintf(&b, "%-8s %-26s %-14s %-10s %-8s %-22s %s\n",
		"Issue", "Component (paper)", "Type", "Status", "Mutants", "Seed test", "Description")
	for _, r := range rows {
		status, iters := "missed", fmt.Sprintf(">%d", r.iters)
		if r.found {
			status, iters = "found", fmt.Sprintf("%d", r.iters)
		}
		fmt.Fprintf(&b, "%-8d %-26s %-14s %-10s %-8s %-22s %s\n",
			r.info.Issue, r.info.PaperComp, r.info.Kind, status, iters, r.seedT, r.info.Desc)
	}
	fmt.Fprintf(&b, "\nTotals: %d/%d bugs found (%d miscompilations, %d crashes)\n",
		foundCount, len(rows), miscompiles, crashes)
	fmt.Fprintf(&b, "Paper reports: 33 bugs (19 miscompilations, 14 crashes)\n")

	fmt.Println()
	fmt.Print(b.String())
	if *outPath != "" {
		if err := os.WriteFile(*outPath, []byte(b.String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "fuzz-campaign:", err)
			os.Exit(1)
		}
	}
}
