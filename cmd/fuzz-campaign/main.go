// fuzz-campaign reproduces the paper's bug-finding experiment (§V-A,
// Table I): for every seeded defect in the optimizer's bug registry it
// runs an alive-mutate fuzzing campaign over the regression-test suite
// (internal/corpus: hand-written-style tests that sit NEAR each
// optimization's patterns, the way LLVM's unit tests sit near LLVM's bugs)
// with that defect enabled, and reports which bugs were found, after how
// many mutants, and by which kind of evidence (refinement failure vs
// crash) — the same census Table I presents for the 33 real LLVM bugs.
//
// The campaign is sharded over a worker pool (internal/campaign): one
// group per bug, one work unit per (bug × seed test), with the per-bug
// budget threaded through each group's chain. Results are reproducible
// for any -workers value; -workers 1 reproduces the historical serial
// driver byte-for-byte. SIGINT (and -deadline expiry) stop the campaign
// gracefully and still print the partial table.
//
// Usage:
//
//	fuzz-campaign [-budget 12000] [-seed 7] [-passes O2] [-workers N]
//	    [-deadline 10m] [-only 53252,50693] [-stats] [-out table1.txt]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/opt"
)

func main() {
	budget := flag.Int("budget", 12000, "max mutants per bug across its seed tests")
	tvBudget := flag.Int64("tvbudget", 4000, "SAT conflict budget per refinement query")
	seed := flag.Uint64("seed", 7, "campaign master seed")
	passSpec := flag.String("passes", "O2", "optimization pipeline")
	workers := flag.Int("workers", runtime.NumCPU(), "parallel campaign workers (1 = serial-identical)")
	deadline := flag.Duration("deadline", 0, "overall wall-clock budget (0 = none)")
	onlySpec := flag.String("only", "", "comma-separated issue numbers to restrict the campaign to")
	stats := flag.Bool("stats", false, "print the per-bug loop-statistics aggregate")
	outPath := flag.String("out", "", "also write the table to this file")
	flag.Parse()

	var only []int
	if *onlySpec != "" {
		for _, f := range strings.Split(*onlySpec, ",") {
			issue, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				fmt.Fprintf(os.Stderr, "fuzz-campaign: bad -only entry %q: %v\n", f, err)
				os.Exit(2)
			}
			only = append(only, issue)
		}
		known := map[int]bool{}
		for _, info := range opt.Registry {
			known[info.Issue] = true
		}
		for _, issue := range only {
			if !known[issue] {
				fmt.Fprintf(os.Stderr, "fuzz-campaign: -only issue %d is not in the seeded-bug registry\n", issue)
				os.Exit(2)
			}
		}
	}

	// SIGINT cancels the campaign; the partial table still prints.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	rep := campaign.RunBugs(ctx, campaign.BugConfig{
		Budget:   *budget,
		TVBudget: *tvBudget,
		Seed:     *seed,
		Passes:   *passSpec,
		Workers:  *workers,
		Deadline: *deadline,
		Only:     only,
		Progress: func(r campaign.BugRow) { fmt.Println(r.ProgressLine()) },
	})
	wall := time.Since(start)

	table := rep.Table()
	fmt.Println()
	fmt.Print(table)
	if *stats {
		total := rep.Agg.Total()
		fmt.Printf("\nPer-bug loop statistics (workers=%d, wall %.1fs):\n%s", *workers, wall.Seconds(), rep.Agg.String())
		fmt.Printf("Campaign total: %d mutants, %d refinement checks, %d crashes observed\n",
			total.Iterations, total.Checked, total.Crashes)
	}
	if *outPath != "" {
		if err := os.WriteFile(*outPath, []byte(table), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "fuzz-campaign:", err)
			os.Exit(1)
		}
	}
	if rep.Interrupted {
		os.Exit(130)
	}
}
