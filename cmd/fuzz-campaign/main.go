// fuzz-campaign reproduces the paper's bug-finding experiment (§V-A,
// Table I): for every seeded defect in the optimizer's bug registry it
// runs an alive-mutate fuzzing campaign over the regression-test suite
// (internal/corpus: hand-written-style tests that sit NEAR each
// optimization's patterns, the way LLVM's unit tests sit near LLVM's bugs)
// with that defect enabled, and reports which bugs were found, after how
// many mutants, and by which kind of evidence (refinement failure vs
// crash) — the same census Table I presents for the 33 real LLVM bugs.
//
// The campaign is sharded over a worker pool (internal/campaign): one
// group per bug, one work unit per (bug × seed test), with the per-bug
// budget threaded through each group's chain. Results are reproducible
// for any -workers value; -workers 1 reproduces the historical serial
// driver byte-for-byte. SIGINT (and -deadline expiry) stop the campaign
// gracefully and still print the partial table.
//
// Usage:
//
//	fuzz-campaign [-budget 12000] [-seed 7] [-passes O2] [-workers N]
//	    [-deadline 10m] [-only 53252,50693] [-stats] [-out table1.txt]
//	    [-metrics-addr 127.0.0.1:8787] [-metrics-public] [-metrics-out metrics.json]
//	    [-journal events.jsonl] [-progress 10s] [-stall-threshold 2m]
//	    [-spans-out spans.jsonl] [-spans-deterministic]
//	    [-triage-dir triage/] [-checkpoint-dir ckpt/]
//	    [-checkpoint-interval 10s] [-resume]
//
// Checkpointing (docs/CHECKPOINTING.md): -checkpoint-dir makes the
// campaign durable — its progress is periodically serialized to
// <dir>/checkpoint.jsonl, and a campaign killed at ANY point (SIGKILL
// included) restarts with -resume and produces a final table and triage
// tree byte-identical to an uninterrupted run, at any -workers value.
// SIGINT additionally flushes a final checkpoint before the partial
// table prints, so a deliberate interrupt is always resumable. A resumed
// run appends to the same -journal file, starting with a
// campaign_resumed event.
//
// Observability (docs/OBSERVABILITY.md): -metrics-addr serves the live
// surface while the campaign runs — an embedded dashboard at /, the
// coordinator status API (/api/status, /api/units, /api/groups), the SSE
// journal tail (/api/events), Prometheus exposition
// (/metrics/prometheus), plus expvar and pprof. The listener binds
// loopback unless -metrics-public is set. -metrics-out writes the
// end-of-run snapshot; -journal streams structured JSONL events;
// -progress prints live throughput, ETA, and groups-found to stderr.
// Telemetry is write-only — the result table is byte-identical with it
// on or off.
//
// Triage (docs/OBSERVABILITY.md "Triage & Reproducers"): -triage-dir
// deduplicates findings by bug signature and writes one auto-shrunk
// reproducer bundle per signature (plus index.json) after the campaign
// ends. Like telemetry it never feeds back into the campaign, so the
// table stays byte-identical with triage on or off.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/campaign"
	"repro/internal/moduleio"
	"repro/internal/opt"
	"repro/internal/telemetry"
	"repro/internal/telemetry/spans"
	"repro/internal/triage"
)

func main() {
	// Deferred cleanup (journal flush, metrics server shutdown) must run
	// before the process exits, so the exit code is threaded out of run.
	os.Exit(run())
}

func run() int {
	budget := flag.Int("budget", 12000, "max mutants per bug across its seed tests")
	tvBudget := flag.Int64("tvbudget", 4000, "SAT conflict budget per refinement query")
	seed := flag.Uint64("seed", 7, "campaign master seed")
	passSpec := flag.String("passes", "O2", "optimization pipeline")
	workers := flag.Int("workers", runtime.NumCPU(), "parallel campaign workers (1 = serial-identical)")
	deadline := flag.Duration("deadline", 0, "overall wall-clock budget (0 = none)")
	onlySpec := flag.String("only", "", "comma-separated issue numbers to restrict the campaign to")
	stats := flag.Bool("stats", false, "print the per-bug loop-statistics aggregate")
	outPath := flag.String("out", "", "also write the table to this file")
	metricsAddr := flag.String("metrics-addr", "", "serve the live dashboard, status API, SSE events, Prometheus metrics, expvar and pprof on this address (host:port; localhost unless -metrics-public)")
	metricsPublic := flag.Bool("metrics-public", false, "allow -metrics-addr to bind a non-loopback interface (endpoint exposes pprof and internals)")
	metricsOut := flag.String("metrics-out", "", "write the end-of-run metrics snapshot (JSON) to this file")
	journalPath := flag.String("journal", "", "write the structured JSONL event journal to this file")
	progress := flag.Duration("progress", 0, "print live throughput to stderr at this interval (0 = off)")
	stall := flag.Duration("stall-threshold", 0, "journal a worker_stall event for units running longer than this (0 = off)")
	triageDir := flag.String("triage-dir", "", "write deduplicated, auto-shrunk reproducer bundles to this directory")
	ckptDir := flag.String("checkpoint-dir", "", "durably checkpoint campaign progress under this directory")
	ckptInterval := flag.Duration("checkpoint-interval", 10*time.Second, "minimum gap between periodic checkpoint writes (0 = every unit)")
	resume := flag.Bool("resume", false, "resume the campaign from -checkpoint-dir's checkpoint")
	spansOut := flag.String("spans-out", "", "record cost-attribution spans and write the alive-mutate-spans/v1 file here (see campaign-profile)")
	spansDet := flag.Bool("spans-deterministic", false, "zero wall-clock in recorded spans so the spans file is byte-identical at any -workers (structure and solver counters only)")
	noAnalysis := flag.Bool("no-analysis", false, "disable the dataflow-analysis-backed folds (A/B comparison runs)")
	noTVCache := flag.Bool("no-tv-cache", false, "disable the per-unit refinement-verdict cache (A/B comparison runs)")
	sharedTVCache := flag.Bool("shared-tv-cache", false, "share one verdict cache across all workers (hit counts become scheduling-dependent)")
	noIncremental := flag.Bool("no-incremental", false, "disable assumption-based incremental SAT solving (A/B comparison runs)")
	satPreprocess := flag.Bool("sat-preprocess", false, "enable SatELite-lite CNF preprocessing before each solve")
	noStaticTV := flag.Bool("no-static-tv", false, "disable the static refinement pre-verifier (A/B comparison runs)")
	noConcreteTV := flag.Bool("no-concrete-tv", false, "disable the concrete-execution differential pre-screen (A/B comparison runs)")
	noSharedSrc := flag.Bool("no-shared-src", false, "disable campaign-level shared src encodings (A/B comparison runs)")
	portfolio := flag.Int("portfolio", 3, "number of solver configurations the deterministic portfolio races on budget-bound queries (0 or 1 = off)")
	flag.Parse()

	var only []int
	if *onlySpec != "" {
		for _, f := range strings.Split(*onlySpec, ",") {
			issue, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				fmt.Fprintf(os.Stderr, "fuzz-campaign: bad -only entry %q: %v\n", f, err)
				return 2
			}
			only = append(only, issue)
		}
		known := map[int]bool{}
		for _, info := range opt.Registry {
			known[info.Issue] = true
		}
		for _, issue := range only {
			if !known[issue] {
				fmt.Fprintf(os.Stderr, "fuzz-campaign: -only issue %d is not in the seeded-bug registry\n", issue)
				return 2
			}
		}
	}

	// Assemble the telemetry sink. A nil sink (no telemetry flags, no
	// -stats) turns every hook in the pipeline into a pointer test.
	var sink *telemetry.Sink
	wantMetrics := *metricsAddr != "" || *metricsOut != "" || *journalPath != "" || *progress > 0 || *stats || *spansOut != ""
	if wantMetrics {
		sink = &telemetry.Sink{Metrics: telemetry.NewCollector(), Shard: -1}
		sink.Metrics.SetLabel("command", "fuzz-campaign")
		sink.Metrics.SetLabel("workers", strconv.Itoa(*workers))
		sink.Metrics.SetLabel("seed", strconv.FormatUint(*seed, 10))
		sink.Metrics.SetLabel("budget", strconv.Itoa(*budget))
		sink.Metrics.SetLabel("passes", *passSpec)
	}
	if *journalPath != "" {
		// A resumed campaign appends to the killed run's journal so the
		// full event history — ending in campaign_resumed, then the
		// continuation — lives in one file.
		jflags := os.O_CREATE | os.O_WRONLY | os.O_TRUNC
		if *resume {
			jflags = os.O_CREATE | os.O_WRONLY | os.O_APPEND
		}
		jf, err := os.OpenFile(*journalPath, jflags, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fuzz-campaign:", err)
			return 1
		}
		sink.Journal = telemetry.NewJournal(jf)
		defer sink.Journal.Close()
	}
	// The coordinator publishes its live read model whenever something
	// will read it: the HTTP status API or the -progress ticker (both
	// consume the same snapshot, so their rates and ETAs always agree).
	if *metricsAddr != "" || *progress > 0 {
		sink.Status = telemetry.NewStatusPublisher()
	}
	// Cost-attribution spans (docs/OBSERVABILITY.md "Cost attribution").
	// Deltas collect in memory during the run; the canonical file is
	// written after the table, so the campaign loop never blocks on it.
	var spanStore *spans.Store
	if *spansOut != "" {
		spanStore = spans.NewStore(*spansDet)
	}
	if *metricsAddr != "" {
		// The SSE stream tails the journal through a bounded ring. With no
		// -journal file the events still need a journal to be born in, so
		// one is opened over io.Discard — the ring is then its only reader.
		if sink.Journal == nil {
			sink.Journal = telemetry.NewJournal(io.Discard)
			defer sink.Journal.Close()
		}
		events := telemetry.NewEventBuffer(0)
		sink.Journal.Tee(events)
		srv, err := telemetry.Serve(*metricsAddr, telemetry.ServeOptions{
			Collector: sink.Metrics,
			Status:    sink.Status,
			Events:    events,
			Spans:     spanStore,
			Public:    *metricsPublic,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "fuzz-campaign:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "fuzz-campaign: dashboard at http://%s/ (status /api/status, events /api/events, metrics /metrics/prometheus, pprof /debug/pprof/)\n", srv.Addr)
		defer srv.Close()
	}
	stopProgress := telemetry.StartProgress(os.Stderr, sink.Collector(), sink.StatusPublisher(), *progress)

	var triageSink *triage.Sink
	if *triageDir != "" {
		triageSink = triage.NewSink()
	}

	// SIGINT cancels the campaign; the partial table still prints.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	rep, err := campaign.RunBugs(ctx, campaign.BugConfig{
		Budget:             *budget,
		TVBudget:           *tvBudget,
		Seed:               *seed,
		Passes:             *passSpec,
		Workers:            *workers,
		Deadline:           *deadline,
		Only:               only,
		Progress:           func(r campaign.BugRow) { fmt.Println(r.ProgressLine()) },
		Telemetry:          sink,
		Spans:              spanStore,
		StallThreshold:     *stall,
		Triage:             triageSink,
		NoAnalysis:         *noAnalysis,
		NoTVCache:          *noTVCache,
		SharedTVCache:      *sharedTVCache,
		NoIncremental:      *noIncremental,
		SATPreprocess:      *satPreprocess,
		NoStaticTV:         *noStaticTV,
		NoConcreteTV:       *noConcreteTV,
		NoSharedSrcEnc:     *noSharedSrc,
		Portfolio:          *portfolio,
		CheckpointDir:      *ckptDir,
		CheckpointInterval: *ckptInterval,
		Resume:             *resume,
	})
	wall := time.Since(start)
	stopProgress()
	if rep == nil {
		// Resume refused (missing, corrupt, or mismatched checkpoint):
		// nothing ran, so there is no partial table to print.
		fmt.Fprintln(os.Stderr, "fuzz-campaign:", err)
		return 1
	}
	if err != nil {
		// The campaign ran but checkpointing failed mid-way; the table is
		// still valid — report the checkpoint loss and keep going.
		fmt.Fprintln(os.Stderr, "fuzz-campaign: warning:", err)
	}

	table := rep.Table()
	fmt.Println()
	fmt.Print(table)
	if *stats {
		total := rep.Agg.Total()
		fmt.Printf("\nPer-bug loop statistics (workers=%d, wall %.1fs):\n%s", *workers, wall.Seconds(), rep.Agg.String())
		fmt.Printf("Campaign total: %d mutants, %d refinement checks, %d crashes observed\n",
			total.Iterations, total.Checked, total.Crashes)
		if breakdown := sink.Collector().StageBreakdown(); breakdown != "" {
			fmt.Printf("\nStage-time breakdown (summed across shards):\n%s", breakdown)
		}
	}
	if *outPath != "" {
		if err := os.WriteFile(*outPath, []byte(table), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "fuzz-campaign:", err)
			return 1
		}
	}
	if triageSink != nil {
		entries, err := triageSink.Flush(*triageDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fuzz-campaign:", err)
			return 1
		}
		fmt.Printf("\nTriage: %d unique bug signature(s) bundled under %s\n", len(entries), *triageDir)
		for _, e := range entries {
			fmt.Printf("  %-36s -> %s (trace %s)\n", e.Signature, e.Dir, e.TraceID)
			sink.Emit(telemetry.Event{
				Type: "triage_bundle", Shard: -1, Group: e.Group,
				Unit: e.Unit, Detail: e.Signature, Trace: e.TraceID,
			})
			// Lint the bundle's shrunk reproducer and count findings per
			// rule (the lint.* counters of docs/OBSERVABILITY.md). Purely
			// additive: lint never feeds back into the campaign.
			mod, err := moduleio.Load(filepath.Join(*triageDir, e.Dir, triage.ShrunkFile))
			if err != nil {
				continue
			}
			for rule, n := range analysis.CountByRule(analysis.Lint(mod, analysis.LintConfig{})) {
				sink.Collector().Counter("lint." + string(rule)).Add(int64(n))
			}
		}
	}
	if spanStore != nil {
		if err := spanStore.WriteFile(*spansOut); err != nil {
			fmt.Fprintln(os.Stderr, "fuzz-campaign:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "fuzz-campaign: wrote %d unit span delta(s) to %s (analyze with campaign-profile)\n",
			spanStore.Len(), *spansOut)
	}
	if *metricsOut != "" {
		snap := sink.Collector().Snapshot()
		b, err := snap.MarshalIndentedJSON()
		if err == nil {
			err = os.WriteFile(*metricsOut, b, 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "fuzz-campaign:", err)
			return 1
		}
	}
	if rep.Interrupted {
		return 130
	}
	return 0
}
