// triage-replay re-executes reproducer bundles written by a
// `fuzz-campaign -triage-dir` run and asserts that each bug still fires:
// the shrunk module and the original mutant must both reproduce the
// bundle's signature through opt+TV, and the mutant must be regenerable
// byte-for-byte from the seed test and the logged PRNG seed (the paper's
// §III-E repeatability workflow, checked end to end).
//
// Usage:
//
//	triage-replay -dir triage/            # replay every bundle in index.json
//	triage-replay -bundle triage/<slug>   # replay one bundle
//
// Exit status 0 means every bundle replayed; 1 means at least one did
// not (or a bundle was malformed).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
	"repro/internal/moduleio"
	"repro/internal/triage"
)

func main() {
	os.Exit(run())
}

func run() int {
	dir := flag.String("dir", "", "triage directory to replay (every bundle in its index.json)")
	bundle := flag.String("bundle", "", "single bundle directory to replay")
	noLint := flag.Bool("no-lint", false, "skip the IR lint pass over each bundle's shrunk reproducer")
	flag.Parse()
	if (*dir == "") == (*bundle == "") {
		fmt.Fprintln(os.Stderr, "triage-replay: exactly one of -dir or -bundle is required")
		return 2
	}

	var bundles []string
	if *bundle != "" {
		bundles = []string{*bundle}
	} else {
		idx, err := triage.LoadIndex(*dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "triage-replay:", err)
			return 1
		}
		if len(idx.Bundles) == 0 {
			fmt.Fprintln(os.Stderr, "triage-replay: index lists no bundles")
			return 1
		}
		for _, e := range idx.Bundles {
			bundles = append(bundles, filepath.Join(*dir, e.Dir))
		}
	}

	failed := 0
	for _, bdir := range bundles {
		res, err := triage.Replay(bdir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "triage-replay: %s: %v\n", bdir, err)
			failed++
			continue
		}
		status := "OK"
		if !res.OK() {
			status = "FAIL"
			failed++
		}
		fmt.Printf("%-4s %s\n", status, res.Signature)
		fmt.Printf("     shrunk fires=%v (%d instrs)  mutant fires=%v (%d instrs)  regenerated-from-seed=%v\n",
			res.ShrunkFires, res.ShrunkInstrs, res.MutantFires, res.MutantInstrs, res.RegenMatches)
		if !*noLint {
			lintBundle(bdir)
		}
	}
	fmt.Printf("%d/%d bundle(s) replayed\n", len(bundles)-failed, len(bundles))
	if failed > 0 {
		return 1
	}
	return 0
}

// lintBundle runs the IR lint suite over the bundle's shrunk reproducer.
// Findings are informational — reduced reproducers routinely contain
// lint-worthy IR (that is often the bug) — so they never fail the replay.
func lintBundle(bdir string) {
	mod, err := moduleio.Load(filepath.Join(bdir, triage.ShrunkFile))
	if err != nil {
		fmt.Printf("     lint: skipped (%v)\n", err)
		return
	}
	diags := analysis.Lint(mod, analysis.LintConfig{})
	if len(diags) == 0 {
		fmt.Printf("     lint: clean\n")
		return
	}
	fmt.Printf("     lint: %d finding(s)\n", len(diags))
	for _, d := range diags {
		fmt.Printf("       %s\n", d)
	}
}
