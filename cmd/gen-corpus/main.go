// gen-corpus synthesizes seed IR test files shaped like LLVM's unit tests
// (the population the paper mutates; see internal/corpus). One file is
// written per function so the throughput experiment can sample small
// files, as the paper does (§V-B: "200 LLVM IR files, each of them smaller
// than 2 KB").
//
// Usage:
//
//	gen-corpus -n 200 -seed 42 -dir tests/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/corpus"
)

func main() {
	n := flag.Int("n", 200, "number of test files")
	seed := flag.Uint64("seed", 42, "generator seed")
	dir := flag.String("dir", "tests", "output directory")
	flag.Parse()

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "gen-corpus:", err)
		os.Exit(1)
	}
	mod := corpus.Generate(*seed, *n)

	// Each file gets the declarations plus one definition.
	var decls string
	for _, f := range mod.Funcs {
		if f.IsDecl {
			decls += f.String()
		}
	}
	i := 0
	for _, f := range mod.Defs() {
		text := decls + "\n" + f.String()
		// Only include declarations actually referenced, keeping files
		// minimal like real unit tests.
		path := filepath.Join(*dir, fmt.Sprintf("test%d.ll", i))
		if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "gen-corpus:", err)
			os.Exit(1)
		}
		i++
	}
	fmt.Printf("gen-corpus: wrote %d files to %s\n", i, *dir)
}
