// telemetry-check validates -metrics-out snapshots against the
// documented schema (docs/OBSERVABILITY.md) and compares stage-time
// breakdowns across snapshots. CI runs it over the campaign-smoke
// artifact; the workers sweep (benchmark/fuzzing/run.sh sweep) uses
// -compare to print a per-worker-count stage table.
//
// Usage:
//
//	telemetry-check snapshot.json [more.json ...]
//	telemetry-check -require-campaign snapshot.json
//	telemetry-check -compare w1.json w2.json w4.json
//
// Without -compare, every file is validated and the process exits
// non-zero on the first schema violation. -require-campaign additionally
// asserts the snapshot came from a real campaign run: a positive mutants
// counter and the three core pipeline stages present.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/telemetry"
)

func main() {
	compare := flag.Bool("compare", false, "print a stage-time comparison table across the given snapshots")
	requireCampaign := flag.Bool("require-campaign", false, "additionally require campaign-shaped content (mutants > 0, core stages present)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: telemetry-check [-compare] [-require-campaign] snapshot.json ...")
		os.Exit(2)
	}

	var snaps []*telemetry.Snapshot
	var names []string
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fail("%v", err)
		}
		snap, err := telemetry.ValidateSnapshot(data)
		if err != nil {
			fail("%s: %v", path, err)
		}
		if *requireCampaign {
			if err := checkCampaignShape(snap); err != nil {
				fail("%s: %v", path, err)
			}
		}
		snaps = append(snaps, snap)
		names = append(names, strings.TrimSuffix(filepath.Base(path), ".json"))
		if !*compare {
			fmt.Printf("%s: OK (%d counters, %d histograms, %d mutants)\n",
				path, len(snap.Counters), len(snap.Histograms), snap.Counters["mutants"])
		}
	}
	if *compare {
		fmt.Print(compareTable(names, snaps))
	}
}

// checkCampaignShape asserts the snapshot records an actual campaign.
func checkCampaignShape(s *telemetry.Snapshot) error {
	if s.Counters["mutants"] <= 0 {
		return fmt.Errorf("campaign snapshot has no mutants counter (got %d)", s.Counters["mutants"])
	}
	for _, stage := range []string{"stage.mutate", "stage.opt", "stage.tv"} {
		h, ok := s.Histograms[stage]
		if !ok || h.Count == 0 {
			return fmt.Errorf("campaign snapshot is missing %s timings", stage)
		}
	}
	return nil
}

// compareTable renders per-stage total times side by side, one column per
// snapshot, plus a mutants/sec summary row — the sweep's comparison view.
func compareTable(names []string, snaps []*telemetry.Snapshot) string {
	stageSet := map[string]bool{}
	for _, s := range snaps {
		for name, h := range s.Histograms {
			if strings.HasPrefix(name, "stage.") && h.Count > 0 {
				stageSet[name] = true
			}
		}
	}
	stages := make([]string, 0, len(stageSet))
	for name := range stageSet {
		stages = append(stages, name)
	}
	sort.Strings(stages)

	var b strings.Builder
	fmt.Fprintf(&b, "%-16s", "stage")
	for _, n := range names {
		fmt.Fprintf(&b, " %14s", n)
	}
	b.WriteString("\n")
	for _, stage := range stages {
		fmt.Fprintf(&b, "%-16s", strings.TrimPrefix(stage, "stage."))
		for _, s := range snaps {
			h := s.Histograms[stage]
			fmt.Fprintf(&b, " %14s", time.Duration(h.TotalNS).Round(time.Millisecond))
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "%-16s", "mutants")
	for _, s := range snaps {
		fmt.Fprintf(&b, " %14d", s.Counters["mutants"])
	}
	b.WriteString("\n")
	return b.String()
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "telemetry-check: "+format+"\n", args...)
	os.Exit(1)
}
