// telemetry-check validates telemetry artifacts against their documented
// schemas (docs/OBSERVABILITY.md) and compares stage-time breakdowns
// across snapshots. CI runs it over the campaign-smoke artifact; the
// workers sweep (benchmark/fuzzing/run.sh sweep) uses -compare to print a
// per-worker-count stage table.
//
// Usage:
//
//	telemetry-check snapshot.json [more.json ...]
//	telemetry-check BENCH_throughput.json
//	telemetry-check -require-campaign snapshot.json
//	telemetry-check -compare w1.json w2.json w4.json
//	telemetry-check -trace-out trace.json journal.jsonl
//	telemetry-check -trace-out trace.json -spans spans.jsonl journal.jsonl
//	telemetry-check -status status.json
//	telemetry-check -prom [-against metrics.json] prometheus.txt
//	telemetry-check -hotspots [-top 10] spans.jsonl
//	telemetry-check hotspots.json
//
// Each JSON file's schema is dispatched on its "schema" field:
// alive-mutate-telemetry/v1 snapshots, alive-mutate-bench/v1 benchmark
// documents, alive-mutate-status/v1 captures of /api/status, and
// alive-mutate-hotspots/v1 reports all validate. The process exits
// non-zero on the first violation. -require-campaign additionally
// asserts a snapshot came from a real campaign run: a positive mutants
// counter and the three core pipeline stages present. -trace-out
// converts a JSONL event journal into Chrome trace_event JSON loadable
// in Perfetto / chrome://tracing; with -spans the trace gains true
// nested mutant/stage/solver-query slices joined from a -spans-out file.
// -status forces status validation (schema plus internal consistency:
// unit states sum to the total, group tallies match the summary). -prom
// lints a /metrics/prometheus capture — sorted families, monotone
// cumulative le buckets, _sum/_count self-consistency — and, with
// -against, cross checks it against a /metrics.json snapshot of the same
// run. -hotspots validates alive-mutate-spans/v1 files and prints their
// hotspot table (see also cmd/campaign-profile).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/telemetry"
	"repro/internal/telemetry/spans"
)

func main() {
	compare := flag.Bool("compare", false, "print a stage-time comparison table across the given snapshots")
	requireCampaign := flag.Bool("require-campaign", false, "additionally require campaign-shaped content (mutants > 0, core stages present)")
	requirePositive := flag.Bool("require-positive", false, "additionally require bench documents to carry solver counters with positive activity for every enabled acceleration knob")
	requireCounter := flag.String("require-counter", "", "comma-separated counter names that must be present and positive in snapshot documents")
	traceOut := flag.String("trace-out", "", "convert a JSONL event journal to Chrome trace_event JSON at this path")
	spansPath := flag.String("spans", "", "with -trace-out: nest mutant/stage/query spans from this alive-mutate-spans/v1 file inside the unit slices")
	hotspotsMode := flag.Bool("hotspots", false, "validate alive-mutate-spans/v1 files and print their hotspot tables")
	topN := flag.Int("top", 10, "with -hotspots: entries per ranking section")
	statusMode := flag.Bool("status", false, "validate /api/status JSON captures (schema + internal consistency)")
	promMode := flag.Bool("prom", false, "lint /metrics/prometheus exposition captures")
	against := flag.String("against", "", "with -prom: cross-check the exposition against this /metrics.json snapshot")
	tolerance := flag.Float64("tolerance", 0, "with -prom -against: relative tolerance for _sum agreement (0 = 1e-9)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: telemetry-check [-compare] [-require-campaign] file.json ...\n       telemetry-check -trace-out trace.json [-spans spans.jsonl] journal.jsonl\n       telemetry-check -status status.json\n       telemetry-check -prom [-against metrics.json] prometheus.txt\n       telemetry-check -hotspots [-top 10] spans.jsonl")
		os.Exit(2)
	}

	if *traceOut != "" {
		if flag.NArg() != 1 {
			fail("-trace-out takes exactly one journal file (got %d)", flag.NArg())
		}
		exportTrace(flag.Arg(0), *spansPath, *traceOut)
		return
	}
	if *hotspotsMode {
		for _, path := range flag.Args() {
			f, err := spans.ReadFile(path)
			if err != nil {
				fail("%s: %v", path, err)
			}
			nspans := 0
			for _, u := range f.Units {
				nspans += len(u.Spans)
			}
			det := ""
			if f.Deterministic {
				det = ", deterministic"
			}
			fmt.Printf("%s: OK (%s, %d units, %d spans%s)\n", path, spans.SchemaV1, len(f.Units), nspans, det)
			fmt.Print(spans.Compute(f.Units, f.Deterministic, *topN).Table())
		}
		return
	}
	if *statusMode {
		for _, path := range flag.Args() {
			data, err := os.ReadFile(path)
			if err != nil {
				fail("%v", err)
			}
			s, err := telemetry.ValidateStatus(data)
			if err != nil {
				fail("%s: %v", path, err)
			}
			fmt.Printf("%s: OK (%s, %d/%d units done, %d/%d groups found, %d mutants)\n",
				path, telemetry.StatusSchemaV1, s.UnitsDone, s.UnitsTotal, s.GroupsFound, s.GroupsTotal, s.Mutants)
		}
		return
	}
	if *promMode {
		var snap *telemetry.Snapshot
		if *against != "" {
			data, err := os.ReadFile(*against)
			if err != nil {
				fail("%v", err)
			}
			snap, err = telemetry.ValidateSnapshot(data)
			if err != nil {
				fail("%s: %v", *against, err)
			}
		}
		for _, path := range flag.Args() {
			data, err := os.ReadFile(path)
			if err != nil {
				fail("%v", err)
			}
			if err := telemetry.LintPrometheus(data, snap, *tolerance); err != nil {
				fail("%s: %v", path, err)
			}
			extra := ""
			if snap != nil {
				extra = fmt.Sprintf(", cross-checked against %s", filepath.Base(*against))
			}
			fmt.Printf("%s: OK (prometheus exposition%s)\n", path, extra)
		}
		return
	}

	var snaps []*telemetry.Snapshot
	var names []string
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fail("%v", err)
		}
		switch schema := sniffSchema(path, data); schema {
		case telemetry.BenchSchemaV1:
			b, err := telemetry.ValidateBench(data)
			if err != nil {
				fail("%s: %v", path, err)
			}
			if *compare {
				fail("%s: -compare wants snapshots, not %s documents", path, schema)
			}
			if *requirePositive {
				if err := checkSolverActivity(b); err != nil {
					fail("%s: %v", path, err)
				}
			}
			fmt.Printf("%s: OK (%s, %d files, avg speedup %.2fx)\n",
				path, schema, len(b.Files), b.AvgSpeedup)
		case telemetry.SchemaV1:
			snap, err := telemetry.ValidateSnapshot(data)
			if err != nil {
				fail("%s: %v", path, err)
			}
			if *requireCampaign {
				if err := checkCampaignShape(snap); err != nil {
					fail("%s: %v", path, err)
				}
			}
			if *requireCounter != "" {
				// CI's perf-smoke job asserts tv.cache.hit here: a cache
				// that is wired up but silently never taken must fail the
				// build, not just lose its speedup.
				for _, name := range strings.Split(*requireCounter, ",") {
					if v := snap.Counters[name]; v <= 0 {
						fail("%s: counter %q = %d, want positive", path, name, v)
					}
				}
			}
			snaps = append(snaps, snap)
			names = append(names, strings.TrimSuffix(filepath.Base(path), ".json"))
			if !*compare {
				fmt.Printf("%s: OK (%d counters, %d histograms, %d mutants)\n",
					path, len(snap.Counters), len(snap.Histograms), snap.Counters["mutants"])
			}
		case telemetry.StatusSchemaV1:
			s, err := telemetry.ValidateStatus(data)
			if err != nil {
				fail("%s: %v", path, err)
			}
			if *compare {
				fail("%s: -compare wants snapshots, not %s documents", path, schema)
			}
			fmt.Printf("%s: OK (%s, %d/%d units done, %d/%d groups found, %d mutants)\n",
				path, schema, s.UnitsDone, s.UnitsTotal, s.GroupsFound, s.GroupsTotal, s.Mutants)
		case spans.HotspotsSchemaV1:
			h, err := spans.ValidateHotspots(data)
			if err != nil {
				fail("%s: %v", path, err)
			}
			if *compare {
				fail("%s: -compare wants snapshots, not %s documents", path, schema)
			}
			fmt.Printf("%s: OK (%s, %d units, %d queries, %d cache hits / %d misses)\n",
				path, schema, h.Units, h.Queries, h.CacheHits, h.CacheMisses)
		default:
			fail("%s: unknown schema %q (want %q, %q, %q, or %q)", path, schema, telemetry.SchemaV1, telemetry.BenchSchemaV1, telemetry.StatusSchemaV1, spans.HotspotsSchemaV1)
		}
	}
	if *compare {
		fmt.Print(compareTable(names, snaps))
	}
}

// sniffSchema reads just the document's "schema" field so validation can
// dispatch without guessing from file names.
func sniffSchema(path string, data []byte) string {
	var head struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(data, &head); err != nil {
		fail("%s: not a JSON document: %v", path, err)
	}
	return head.Schema
}

// exportTrace converts a journal to Chrome trace_event JSON; with a
// spans file, unit slices gain nested mutant/stage/query children.
func exportTrace(journalPath, spansPath, outPath string) {
	var units []*spans.UnitSpans
	if spansPath != "" {
		f, err := spans.ReadFile(spansPath)
		if err != nil {
			fail("%s: %v", spansPath, err)
		}
		units = f.Units
	}
	in, err := os.Open(journalPath)
	if err != nil {
		fail("%v", err)
	}
	defer in.Close()
	out, err := os.Create(outPath)
	if err != nil {
		fail("%v", err)
	}
	n, err := telemetry.ExportTraceSpans(in, units, out)
	if cerr := out.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fail("%s: %v", journalPath, err)
	}
	nested := ""
	if spansPath != "" {
		nested = " (nested spans from " + filepath.Base(spansPath) + ")"
	}
	fmt.Printf("%s: %d events -> %s%s (load in Perfetto or chrome://tracing)\n", journalPath, n, outPath, nested)
}

// checkCampaignShape asserts the snapshot records an actual campaign.
func checkCampaignShape(s *telemetry.Snapshot) error {
	if s.Counters["mutants"] <= 0 {
		return fmt.Errorf("campaign snapshot has no mutants counter (got %d)", s.Counters["mutants"])
	}
	for _, stage := range []string{"stage.mutate", "stage.opt", "stage.tv"} {
		h, ok := s.Histograms[stage]
		if !ok || h.Count == 0 {
			return fmt.Errorf("campaign snapshot is missing %s timings", stage)
		}
	}
	return nil
}

// compareTable renders per-stage total times side by side, one column per
// snapshot, plus a mutants/sec summary row — the sweep's comparison view.
func compareTable(names []string, snaps []*telemetry.Snapshot) string {
	stageSet := map[string]bool{}
	for _, s := range snaps {
		for name, h := range s.Histograms {
			if strings.HasPrefix(name, "stage.") && h.Count > 0 {
				stageSet[name] = true
			}
		}
	}
	stages := make([]string, 0, len(stageSet))
	for name := range stageSet {
		stages = append(stages, name)
	}
	sort.Strings(stages)

	var b strings.Builder
	fmt.Fprintf(&b, "%-16s", "stage")
	for _, n := range names {
		fmt.Fprintf(&b, " %14s", n)
	}
	b.WriteString("\n")
	for _, stage := range stages {
		fmt.Fprintf(&b, "%-16s", strings.TrimPrefix(stage, "stage."))
		for _, s := range snaps {
			h := s.Histograms[stage]
			fmt.Fprintf(&b, " %14s", time.Duration(h.TotalNS).Round(time.Millisecond))
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "%-16s", "mutants")
	for _, s := range snaps {
		fmt.Fprintf(&b, " %14d", s.Counters["mutants"])
	}
	b.WriteString("\n")
	return b.String()
}

// checkSolverActivity enforces -require-positive on a bench document:
// the solver section must be present and every enabled acceleration knob
// must show activity. CI's perf-smoke job uses this to catch a cache or
// incremental path that is wired up but silently never taken.
func checkSolverActivity(b *telemetry.Bench) error {
	s := b.Solver
	if s == nil {
		return fmt.Errorf("bench: no solver section (pre-acceleration document?)")
	}
	if s.TVCacheEnabled && s.TVCacheHits <= 0 {
		return fmt.Errorf("bench: tv cache enabled but tv_cache_hits=%d", s.TVCacheHits)
	}
	if s.TVCacheEnabled && s.TVCacheMisses <= 0 {
		return fmt.Errorf("bench: tv cache enabled but tv_cache_misses=%d (no queries reached the solver?)", s.TVCacheMisses)
	}
	if s.IncrementalEnabled && s.SATAssumptions <= 0 {
		return fmt.Errorf("bench: incremental solving enabled but sat_assumptions=%d", s.SATAssumptions)
	}
	if s.PreprocessEnabled && s.SATPreprocessElim < 0 {
		return fmt.Errorf("bench: sat_preprocess_eliminated=%d", s.SATPreprocessElim)
	}
	return nil
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "telemetry-check: "+format+"\n", args...)
	os.Exit(1)
}
