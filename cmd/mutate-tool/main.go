// mutate-tool is the standalone single-shot mutator used by the
// discrete-tool baseline workflow (paper Fig. 2 / §V-B step 1): it reads
// an IR file, applies the mutation engine once with the given seed, and
// writes the mutant — paying the parse and print costs the integrated
// fuzzer avoids.
//
// Usage:
//
//	mutate-tool -seed N [-o out.ll] [-max-mutations K] input.ll
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/moduleio"
	"repro/internal/mutate"
)

func main() {
	seed := flag.Uint64("seed", 0, "PRNG seed for the mutant")
	out := flag.String("o", "", "output file (default: stdout)")
	maxMut := flag.Int("max-mutations", 0, "max mutations per function (0 = default)")
	emitBC := flag.Bool("emit-bitcode", false, "write the mutant as compact bitcode")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mutate-tool -seed N [-o out.ll] input.ll")
		os.Exit(2)
	}
	mod, err := moduleio.Load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "mutate-tool:", err)
		os.Exit(1)
	}
	mu := mutate.New(mod, mutate.Config{MaxMutationsPerFunction: *maxMut})
	mutant := mu.Mutate(*seed)

	if *out == "" {
		fmt.Print(mutant.String())
		return
	}
	if err := moduleio.Save(*out, mutant, *emitBC); err != nil {
		fmt.Fprintln(os.Stderr, "mutate-tool:", err)
		os.Exit(1)
	}
}
