// alive-mutate is the integrated fuzzer: mutation, optimization, and
// translation validation in a single process (paper Fig. 3). It mirrors
// the artifact's command line (paper appendix §G):
//
//	alive-mutate [flags] input.ll [more.ll ...]
//
//	-n N            generate N mutants per input file (like the artifact's -n)
//	-t SECONDS      or run for a time budget (like -t)
//	-seed S         master PRNG seed (default 1); every mutant's own seed is logged
//	-passes SPEC    optimization pipeline: O1, O2, or comma-separated passes
//	-save-all DIR   save every mutant as NAME0.ll, NAME1.ll, ... (like -saveAll)
//	-save-bugs DIR  save only failing mutants and their optimized forms
//	-replay SEED    regenerate the single mutant for SEED and print it
//	-bug ISSUE      enable a seeded defect by LLVM issue number (experiments)
//	-mutations LIST restrict mutation operators (comma-separated names)
//	-verify-mutants run the IR verifier on every mutant
//	-quiet          suppress the per-finding log
//
// Observability (docs/OBSERVABILITY.md):
//
//	-metrics-addr A serve live expvar + pprof on a localhost address
//	-metrics-out F  write the end-of-run telemetry snapshot (JSON)
//	-progress D     print live throughput to stderr every D (e.g. 5s)
//	-stages         print the per-stage time breakdown after each file
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/moduleio"
	"repro/internal/mutate"
	"repro/internal/opt"
	"repro/internal/rng"
	"repro/internal/telemetry"
)

func main() {
	n := flag.Int("n", 0, "number of mutants per input file")
	tSec := flag.Float64("t", 0, "time budget in seconds per input file")
	seed := flag.Uint64("seed", 1, "master PRNG seed")
	passSpec := flag.String("passes", "O2", "optimization pipeline")
	saveAll := flag.String("save-all", "", "directory to save every mutant")
	saveBugs := flag.String("save-bugs", "", "directory to save failing mutants")
	replay := flag.Uint64("replay", 0, "regenerate the mutant for this seed and print it")
	bugIssue := flag.Int("bug", 0, "enable a seeded defect by issue number")
	mutations := flag.String("mutations", "", "comma-separated mutation operators (default: all)")
	verifyMutants := flag.Bool("verify-mutants", false, "run the IR verifier on every mutant")
	quiet := flag.Bool("quiet", false, "suppress the per-finding log")
	metricsAddr := flag.String("metrics-addr", "", "serve live metrics, expvar and pprof on this address (host:port; localhost unless -metrics-public)")
	metricsPublic := flag.Bool("metrics-public", false, "allow -metrics-addr to bind a non-loopback interface (endpoint exposes pprof and internals)")
	metricsOut := flag.String("metrics-out", "", "write the end-of-run metrics snapshot (JSON) to this file")
	progress := flag.Duration("progress", 0, "print live throughput to stderr at this interval (0 = off)")
	stages := flag.Bool("stages", false, "print the per-stage time breakdown after each file")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: alive-mutate [flags] input.ll ...")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if *n == 0 && *tSec == 0 && *replay == 0 {
		*n = 1000
	}

	mutCfg, err := parseMutations(*mutations)
	if err != nil {
		fatal(err)
	}
	bugs, err := resolveBug(*bugIssue)
	if err != nil {
		fatal(err)
	}

	// One sink shared by every input file (the snapshot aggregates the
	// whole invocation); nil when no telemetry flag asked for it.
	var sink *telemetry.Sink
	if *metricsAddr != "" || *metricsOut != "" || *progress > 0 || *stages {
		sink = &telemetry.Sink{Metrics: telemetry.NewCollector(), Shard: -1}
		sink.Metrics.SetLabel("command", "alive-mutate")
		sink.Metrics.SetLabel("seed", fmt.Sprint(*seed))
		sink.Metrics.SetLabel("passes", *passSpec)
	}
	if *metricsAddr != "" {
		// No campaign coordinator here, so the status API and SSE stream
		// stay off; the dashboard, Prometheus, expvar, and pprof routes
		// serve from the shared collector.
		srv, err := telemetry.Serve(*metricsAddr, telemetry.ServeOptions{
			Collector: sink.Metrics,
			Public:    *metricsPublic,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "alive-mutate: metrics at http://%s/ (Prometheus /metrics/prometheus, pprof /debug/pprof/)\n", srv.Addr)
		defer srv.Close()
	}
	stopProgress := telemetry.StartProgress(os.Stderr, sink.Collector(), nil, *progress)
	defer stopProgress()

	anyFinding := false
	for _, path := range flag.Args() {
		mod, err := moduleio.Load(path)
		if err != nil {
			fatal(err)
		}

		var logw io.Writer
		if !*quiet {
			logw = os.Stdout
		}
		// alive-mutate is serial, so files record straight into the shared
		// collector (live -progress reads it) — no shard merge needed.
		opts := core.Options{
			Passes:        *passSpec,
			Bugs:          bugs,
			Seed:          *seed,
			NumMutants:    *n,
			TimeLimit:     time.Duration(*tSec * float64(time.Second)),
			SaveFindings:  *saveBugs != "" || *saveAll != "",
			Mutations:     mutCfg,
			VerifyMutants: *verifyMutants,
			Log:           logw,
			Telemetry:     sink,
		}
		fz, err := core.New(mod, opts)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		if dropped := fz.Dropped(); len(dropped) > 0 && !*quiet {
			fmt.Printf("%s: dropped %d function(s) during preprocessing: %s\n",
				path, len(dropped), strings.Join(dropped, ", "))
		}

		if *replay != 0 {
			// §III-E repeatability workflow: regenerate a specific mutant.
			fmt.Print(fz.Replay(*replay).String())
			continue
		}

		if *saveAll != "" {
			if err := saveAllMutants(fz, path, *saveAll, *seed, *n); err != nil {
				fatal(err)
			}
		}

		rep := fz.Run()
		if len(rep.Findings) > 0 {
			anyFinding = true
		}
		if *saveBugs != "" {
			if err := saveFindings(rep, path, *saveBugs); err != nil {
				fatal(err)
			}
		}
		printSummary(path, rep)
		if *stages {
			if breakdown := sink.Collector().StageBreakdown(); breakdown != "" {
				fmt.Printf("stage-time breakdown (cumulative):\n%s", breakdown)
			}
		}
	}
	if *metricsOut != "" {
		data, err := sink.Collector().Snapshot().MarshalIndentedJSON()
		if err == nil {
			err = os.WriteFile(*metricsOut, data, 0o644)
		}
		if err != nil {
			fatal(err)
		}
	}
	if anyFinding {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "alive-mutate:", err)
	os.Exit(2)
}

func parseMutations(spec string) (mutate.Config, error) {
	var cfg mutate.Config
	if spec == "" {
		return cfg, nil
	}
	byName := map[string]mutate.Op{}
	for _, op := range mutate.AllOps {
		byName[op.String()] = op
	}
	for _, name := range strings.Split(spec, ",") {
		op, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return cfg, fmt.Errorf("unknown mutation operator %q", name)
		}
		cfg.Ops = append(cfg.Ops, op)
	}
	return cfg, nil
}

func resolveBug(issue int) (*opt.BugSet, error) {
	if issue == 0 {
		return nil, nil
	}
	bugs := &opt.BugSet{}
	for _, info := range opt.Registry {
		if info.Issue == issue {
			bugs.Enable(info.ID)
			return bugs, nil
		}
	}
	return nil, fmt.Errorf("unknown seeded bug issue %d", issue)
}

// saveAllMutants mirrors the artifact's -saveAll: mutants named
// test0.ll .. testN-1.ll (paper appendix §F).
func saveAllMutants(fz *core.Fuzzer, inputPath, dir string, seed uint64, n int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	base := strings.TrimSuffix(filepath.Base(inputPath), ".ll")
	master := rng.New(seed)
	for i := 0; i < n; i++ {
		s := master.SplitSeed()
		text := fz.Replay(s).String()
		name := filepath.Join(dir, fmt.Sprintf("%s%d.ll", base, i))
		if err := os.WriteFile(name, []byte(text), 0o644); err != nil {
			return err
		}
	}
	return nil
}

func saveFindings(rep *core.Report, inputPath, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	base := strings.TrimSuffix(filepath.Base(inputPath), ".ll")
	for i, fd := range rep.Findings {
		prefix := filepath.Join(dir, fmt.Sprintf("%s_bug%d_seed%x", base, i, fd.Seed))
		if fd.MutantText != "" {
			if err := os.WriteFile(prefix+"_mutant.ll", []byte(fd.MutantText), 0o644); err != nil {
				return err
			}
		}
		if fd.OptimizedText != "" {
			if err := os.WriteFile(prefix+"_optimized.ll", []byte(fd.OptimizedText), 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}

func printSummary(path string, rep *core.Report) {
	s := rep.Stats
	fmt.Printf("%s: %d mutants in %v | checks: %d valid, %d invalid, %d unsupported, %d unknown | crashes: %d | findings: %d\n",
		path, s.Iterations, s.Elapsed.Round(time.Millisecond),
		s.Valid, s.Invalid, s.Unsupported, s.Unknown, s.Crashes, len(rep.Findings))
	for _, fd := range rep.Findings {
		fmt.Printf("  [%s] iter=%d seed=%#x func=%s %s%s\n",
			fd.Kind, fd.Iter, fd.Seed, fd.Func, fd.CEX, fd.PanicMsg)
	}
}
