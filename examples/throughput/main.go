// throughput is a miniature of the paper's §V-B experiment that runs in a
// few seconds: it mutation-tests one seed file with (a) the integrated
// in-process loop and (b) the file-based loop that re-parses and re-prints
// at every stage boundary, and reports the speedup. (The full experiment,
// with real separate processes, is cmd/bench-throughput.)
//
// Run with:
//
//	go run ./examples/throughput
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/discrete"
	"repro/internal/parser"
	"repro/internal/rng"
)

const input = `
define i32 @clamp(i32 %x, i32 %low, i32 %high) {
  %t0 = icmp slt i32 %x, 0
  %t1 = select i1 %t0, i32 %low, i32 %high
  %t2 = icmp ult i32 %x, 65536
  %n = xor i1 %t2, true
  %r = select i1 %n, i32 %x, i32 %t1
  ret i32 %r
}
`

const count = 300
const seed = 99

func main() {
	mod, err := parser.Parse(input)
	if err != nil {
		log.Fatal(err)
	}

	// (a) Integrated: mutate, optimize, and verify in memory.
	fz, err := core.New(mod.Clone(), core.Options{
		Passes: "O2", Seed: seed, NumMutants: count,
	})
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	rep := fz.Run()
	integrated := time.Since(t0)
	fmt.Printf("integrated loop:  %d mutants in %v (%d valid checks)\n",
		rep.Stats.Iterations, integrated.Round(time.Millisecond), rep.Stats.Valid)

	// (b) File-based: identical seeds, but every stage goes through text
	// files — parse, mutate, print, write, read, parse, optimize, print,
	// write, read, read, parse, parse, verify.
	tmp, err := os.MkdirTemp("", "tp")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(tmp)
	loop := &discrete.FileLoop{Passes: "O2", TmpDir: tmp}
	master := rng.New(seed)
	t0 = time.Now()
	valid := 0
	for i := 0; i < count; i++ {
		r, err := loop.Iteration(input, master.SplitSeed())
		if err != nil {
			log.Fatal(err)
		}
		valid += r.Valid
	}
	fileBased := time.Since(t0)
	fmt.Printf("file-based loop:  %d mutants in %v (%d valid checks)\n",
		count, fileBased.Round(time.Millisecond), valid)

	fmt.Printf("\nspeedup from integration: %.1fx (paper reports 12x on average\n", float64(fileBased)/float64(integrated))
	fmt.Println("against real separate processes; run cmd/bench-throughput for that)")
}
