// Quickstart: the alive-mutate public API in one page.
//
// Parses an LLVM-IR-subset function, generates a few mutants, optimizes
// each with the -O2 pipeline, and translation-validates the result —
// the full mutate→optimize→verify loop, driven manually.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/mutate"
	"repro/internal/opt"
	"repro/internal/parser"
	"repro/internal/tv"
)

const input = `
declare void @clobber(ptr)

define i32 @test9(ptr %p, ptr %q) {
  %a = load i32, ptr %q
  call void @clobber(ptr %p)
  %b = load i32, ptr %q
  %c = sub i32 %a, %b
  ret i32 %c
}
`

func main() {
	// 1. Parse. The parser accepts the .ll text subset (including the
	// legacy typed-pointer syntax used in older LLVM tests).
	mod, err := parser.Parse(input)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== original ===")
	fmt.Print(mod.String())

	// 2. Prepare the mutation engine. Preprocessing (dominator trees,
	// shufflable ranges, constant scans) happens once, here.
	mu := mutate.New(mod, mutate.Config{MaxMutationsPerFunction: 2})

	// 3. Mutate / optimize / verify a handful of seeds.
	for seed := uint64(1); seed <= 5; seed++ {
		mutant := mu.Mutate(seed)
		fmt.Printf("\n=== mutant (seed %d) ===\n%s", seed, mutant.String())

		optimized := mutant.Clone()
		passes, _ := opt.ByName("O2")
		opt.RunPasses(opt.NewContext(optimized), passes)
		fmt.Printf("--- after -O2 ---\n%s", optimized.String())

		for _, fn := range optimized.Defs() {
			src := mutant.FuncByName(fn.Name)
			res := tv.Verify(mutant, src, fn, tv.Options{ConflictBudget: 100000})
			fmt.Printf("--- translation validation @%s: %s", fn.Name, res.Verdict)
			if res.CEX != nil {
				fmt.Printf(" — %s", res.CEX)
			}
			fmt.Println(" ---")
		}
	}
}
