// custompass shows the paper's §III-C "out-of-tree pass" workflow: a
// compiler developer plugs their own optimization pass into alive-mutate
// and fuzzes it. The pass below reassociates (x + C1) + C2 but gets a
// corner wrong — it keeps the nsw flag on the combined add. Alive-mutate
// finds an input where the combined add overflows while the original pair
// did not.
//
// Run with:
//
//	go run ./examples/custompass
package main

import (
	"fmt"
	"log"

	"repro/internal/apint"

	"repro/internal/ir"
	"repro/internal/mutate"
	"repro/internal/opt"
	"repro/internal/parser"
	"repro/internal/tv"
)

// reassocPass is the user's out-of-tree pass. It folds
// (x +nsw C1) +nsw C2 into x +nsw (C1+C2) — which is wrong: the combined
// constant can overflow even when each step does not (and vice versa the
// flag may not transfer).
type reassocPass struct{}

func (*reassocPass) Name() string { return "my-reassoc" }

func (*reassocPass) Run(ctx *opt.Context, f *ir.Function) bool {
	changed := false
	for _, b := range f.Blocks {
		for i := 0; i < len(b.Instrs); i++ {
			in := b.Instrs[i]
			if in.Op != ir.OpAdd {
				continue
			}
			c2, ok := in.Args[1].(*ir.Const)
			if !ok {
				continue
			}
			inner, ok := in.Args[0].(*ir.Instr)
			if !ok || inner.Op != ir.OpAdd {
				continue
			}
			c1, ok := inner.Args[1].(*ir.Const)
			if !ok {
				continue
			}
			w := c1.Ty.Bits
			sum := ir.NewConst(c1.Ty, apint.Add(c1.Val, c2.Val, w))
			repl := ir.NewBinary(ir.OpAdd, f.FreshName("ra"), inner.Args[0], sum)
			// BUG: blindly keeping the nsw/nuw flags of the outer add.
			repl.Nsw = in.Nsw || inner.Nsw
			repl.Nuw = in.Nuw || inner.Nuw
			b.InsertAt(i, repl)
			f.ReplaceUses(in, repl)
			b.Remove(b.IndexOf(in))
			changed = true
		}
	}
	return changed
}

const seedTest = `
define i8 @adds(i8 %x) {
  %a = add i8 %x, 100
  %b = add i8 %a, 100
  ret i8 %b
}
`

func main() {
	mod, err := parser.Parse(seedTest)
	if err != nil {
		log.Fatal(err)
	}

	// Drive the loop manually so the custom pass object can be used
	// directly (core.Options takes pipeline specs; the building blocks
	// compose just as well).
	mu := mutate.New(mod, mutate.Config{
		Ops: []mutate.Op{mutate.OpArith, mutate.OpUses},
	})
	pass := &reassocPass{}

	for seed := uint64(1); ; seed++ {
		if seed > 50000 {
			log.Fatal("no bug found — unexpected")
		}
		mutant := mu.Mutate(seed)
		optimized := mutant.Clone()
		pass.Run(opt.NewContext(optimized), optimized.Defs()[0])

		src := mutant.Defs()[0]
		tgt := optimized.Defs()[0]
		res := tv.Verify(mutant, src, tgt, tv.Options{ConflictBudget: 50000})
		if res.Verdict == tv.Invalid {
			fmt.Printf("my-reassoc pass miscompiles! (mutant seed %d)\n", seed)
			fmt.Printf("\n=== mutant ===\n%s", mutant.String())
			fmt.Printf("\n=== after my-reassoc ===\n%s", optimized.String())
			fmt.Printf("\n%s\n", res.CEX)
			fmt.Println("\nfix: drop nsw/nuw when combining constants (or re-verify the flags).")
			return
		}
	}
}
