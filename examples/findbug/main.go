// findbug replays the paper's Fig. 1 end to end: LLVM's real unit test
// @t1_ult_slt_0 (Listing 1) does NOT trigger the clamp-canonicalization
// defect (issue 53252, seeded into our InstCombine), but alive-mutate's
// mutation of it reaches the Listing-2 neighbourhood, the buggy
// canonicalization fires, and translation validation produces a
// counterexample — the exact discovery story of the paper.
//
// Run with:
//
//	go run ./examples/findbug
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/opt"
	"repro/internal/parser"
)

// Listing 1: one of LLVM's unit tests.
const listing1 = `
define i32 @t1_ult_slt_0(i32 %x, i32 %low, i32 %high) {
  %t0 = icmp slt i32 %x, -16
  %t1 = select i1 %t0, i32 %low, i32 %high
  %t2 = add i32 %x, 16
  %t3 = icmp ult i32 %t2, 144
  %r = select i1 %t3, i32 %x, i32 %t1
  ret i32 %r
}
`

func main() {
	mod, err := parser.Parse(listing1)
	if err != nil {
		log.Fatal(err)
	}

	// Enable the seeded clamp defect (the paper's issue 53252: "didn't
	// update predicate in function 'canonicalizeClampLike'").
	bugs := (&opt.BugSet{}).Enable(opt.Bug53252ClampPredicate)

	fz, err := core.New(mod, core.Options{
		Passes:             "instcombine,dce",
		Bugs:               bugs,
		Seed:               0xfeed,
		NumMutants:         20000,
		StopAtFirstFinding: true,
		SaveFindings:       true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("fuzzing @t1_ult_slt_0 against the seeded clamp bug...")
	rep := fz.Run()
	if len(rep.Findings) == 0 {
		log.Fatalf("bug not found in %d mutants — try a different seed", rep.Stats.Iterations)
	}
	fd := rep.Findings[0]
	fmt.Printf("\nfound after %d mutants (seed %#x)\n", fd.Iter, fd.Seed)
	fmt.Printf("\n=== the mutant (cf. paper Listing 2) ===\n%s", fd.MutantText)
	fmt.Printf("\n=== after buggy InstCombine (cf. paper Listing 3) ===\n%s", fd.OptimizedText)
	fmt.Printf("\n=== Alive2-style verdict ===\nmiscompilation: %s\n", fd.CEX)
	if fd.CrossChecked {
		fmt.Println("counterexample confirmed by concrete re-execution of both versions")
	}

	fmt.Printf("\nloop statistics: %d mutants, %d refinement checks (%d valid), %.0f mutants/sec\n",
		rep.Stats.Iterations, rep.Stats.Checked, rep.Stats.Valid,
		float64(rep.Stats.Iterations)/rep.Stats.Elapsed.Seconds())
}
