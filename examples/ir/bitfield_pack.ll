; Pack two nibbles into one byte. Known-bits tracks the disjoint masks
; through the or, proving the icmp in @has_high without running anything.
define i8 @pack(i8 %lo, i8 %hi) {
  %l = and i8 %lo, 15
  %h4 = shl i8 %hi, 4
  %packed = or i8 %h4, %l
  ret i8 %packed
}

define i1 @has_high(i8 %lo) {
  %l = and i8 %lo, 15
  %set = or i8 %l, 16
  %c = icmp uge i8 %set, 16
  ret i1 %c
}
