; Clamp a value into [lo, hi] with smax/smin, the canonical pattern the
; range analysis tightens (docs/ANALYSIS.md).
define i32 @clamp(i32 %v, i32 %lo, i32 %hi) {
  %above = call i32 @llvm.smax.i32(i32 %v, i32 %lo)
  %r = call i32 @llvm.smin.i32(i32 %above, i32 %hi)
  ret i32 %r
}

define i32 @clamp_byte(i32 %v) {
  %above = call i32 @llvm.smax.i32(i32 %v, i32 0)
  %r = call i32 @llvm.smin.i32(i32 %above, i32 255)
  ret i32 %r
}
