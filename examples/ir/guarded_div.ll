; A branch-guarded division: the guarded edge proves the divisor nonzero
; in %safe, which the LVI-lite range refinement picks up.
define i32 @guarded_div(i32 %n, i32 %d) {
entry:
  %nz = icmp ne i32 %d, 0
  br i1 %nz, label %safe, label %fallback
safe:
  %q = udiv i32 %n, %d
  ret i32 %q
fallback:
  ret i32 0
}
